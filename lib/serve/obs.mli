(** Observability plane of the serve daemon: Prometheus text-format
    exposition, labeled instruments, and the per-request flight
    recorder behind the [dump_trace] op.

    {2 Labels}

    {!Commx_util.Telemetry} instruments are flat-named; Prometheus
    series carry labels.  The bridge is a naming convention:
    [{!labeled} "serve.op_us" [("op", "exact_cc"); ("outcome", "ok")]]
    interns the instrument under ["serve.op_us|op=exact_cc|outcome=ok"]
    and the renderer parses the ['|']-separated suffix back into
    labels, so one metric {e family} ([serve_op_us]) collects every
    combination.  Label values are escaped per the exposition format
    (backslash, double quote and newline); names are sanitized to
    [[a-zA-Z0-9_:]].

    {2 Exposition}

    {!render_metrics} turns counter/gauge/histogram snapshots into the
    Prometheus text format (version 0.0.4): [# HELP] / [# TYPE] per
    family, counters suffixed [_total], histograms as {e cumulative}
    [_bucket{le="..."}] series (the power-of-two bucket bounds of
    {!Commx_util.Telemetry.histogram_summary}, plus [le="+Inf"]) with
    [_sum] and [_count].

    {2 Flight recorder}

    A bounded ring of completed request traces (each a parented
    queue-wait -> search -> reply-write span chain built by the
    server).  Cheap when disabled (capacity 0: one load and branch);
    dumpable as Chrome trace-event JSON via the [dump_trace] op or
    {!Recorder.dump} on crash. *)

module Telemetry = Commx_util.Telemetry

val labeled : string -> (string * string) list -> string
(** [labeled base labels] is the flat instrument name encoding
    [labels]: [base ^ "|k=v|k2=v2"].  [base] and label keys must not
    contain ['|'] or ['=']; values may (the first ['='] splits). *)

val parse_name : string -> string * (string * string) list
(** Inverse of {!labeled}; a name with no ['|'] has no labels. *)

val metric_name : string -> string
(** Sanitize a telemetry name into a Prometheus metric name: every
    character outside [[a-zA-Z0-9_:]] becomes ['_'] (so
    ["serve.worker_crashes"] -> ["serve_worker_crashes"]), with a
    leading ['_'] prepended if the result would start with a digit. *)

val escape_label_value : string -> string
(** Exposition-format label-value escaping: backslash, double quote
    and newline. *)

val render_metrics :
  ?extra:string ->
  counters:(string * int) list ->
  gauges:(string * float) list ->
  histograms:(string * Telemetry.histogram_summary) list ->
  unit ->
  string
(** The full [GET /metrics] payload.  [?extra] is verbatim pre-rendered
    exposition text placed first (the server's direct series).
    Counters render as [<name>_total]; histogram buckets are
    cumulative and always end with [le="+Inf"] equal to [_count]. *)

(** {2 Per-op latency} *)

val observe_op : op:string -> outcome:string -> int -> unit
(** Record one request latency (microseconds) into the
    [serve.op_us{op, outcome}] histogram family.  No-op below
    [Metrics] level. *)

val op_summaries : unit -> (string * Telemetry.histogram_summary) list
(** Current per-op latency summaries merged across outcomes, sorted by
    op — the [ops] object of the [stats] reply and the [ccmx top]
    per-op table. *)

(** {2 HTTP} *)

val http_response : ?status:int -> content_type:string -> string -> string
(** A complete minimal HTTP/1.0 response (status default 200) with
    [Content-Length] and [Connection: close]. *)

val http_path : string -> string option
(** The request target of an HTTP request head (["GET /metrics
    HTTP/1.1"] -> [Some "/metrics"]); [None] when the head is not a
    GET. *)

(** {2 Flight recorder} *)

module Recorder : sig
  type span = {
    name : string;
    id : int;
    parent : int;  (** 0 = root *)
    start_ns : int;  (** monotonic, {!Commx_util.Clock} epoch *)
    dur_ns : int;
    args : (string * string) list;
  }

  type t

  val create : capacity:int -> t
  (** A ring keeping the last [capacity] requests' span chains.
      [capacity = 0] disables recording entirely.
      @raise Invalid_argument when [capacity < 0]. *)

  val enabled : t -> bool

  val next_id : unit -> int
  (** Globally unique nonzero span id (shared across recorders). *)

  val record : t -> span list -> unit
  (** Append one completed request's spans, evicting the oldest
      request when full.  Safe from any domain. *)

  val spans : t -> span list
  (** Current contents, oldest request first. *)

  val to_chrome : t -> Commx_util.Json.t
  (** The ring as a Chrome trace-event document
      ([{"traceEvents": [...]}], [ph = "X"] complete events,
      microsecond timestamps, span/parent ids in [args]) — loadable in
      chrome://tracing or Perfetto, and the payload of the
      [dump_trace] op. *)

  val dump : t -> path:string -> unit
  (** Write {!to_chrome} to [path] atomically
      ({!Commx_util.Json.Atomic} temp+rename).  Used on worker crash
      and fatal exit. *)
end
