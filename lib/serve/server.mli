(** The [ccmx serve] daemon: a persistent CC-oracle behind a Unix
    socket.

    One process keeps the expensive state — the transposition-table
    arrangement of the exact-CC engine and a content-addressed result
    cache — warm across any number of {!Wire} queries, so a fleet of
    short-lived clients (experiment scripts, CI, notebooks) shares one
    set of searches instead of each recomputing from cold.

    {2 Architecture}

    - The {b acceptor} (caller's domain) owns the listening socket and
      every connection: a [select] loop reads request lines, parses
      them, answers the trivial ops ([ping]/[stats]/[shutdown]) inline
      and dispatches compute ops to workers.  It polls the stop flag
      between select rounds, so SIGTERM/SIGINT handlers only need to
      flip an [Atomic].
    - {b Worker domains} each own one {!Commx_util.Txtable} segment
      (Txtable is not thread-safe, so segments are never shared).
      Exact-CC requests route by their table tag ([tag mod workers]):
      the same canonical matrix always lands on the same segment and
      therefore always finds its own warm entries.  Other ops route by
      a hash of their content key.
    - {b Replies} go out strictly in request order per connection
      (sequence numbers; finished replies buffer until their turn), so
      clients may pipeline blindly.  A broken client pipe marks only
      that connection dead — EPIPE never kills the daemon.
    - {b Admission}: each worker queue is bounded; requests beyond the
      bound are answered immediately with an error instead of piling
      up.
    - {b Snapshot}: on graceful drain the daemon persists tags, result
      cache and all table segments to one versioned JSON file
      (atomically, via {!Commx_util.Json.Atomic}); on restart the file
      is validated and the segments redistributed, so cache warmth
      survives restarts — even across a change in worker count.
      Corrupt or version-mismatched snapshots are rejected with a
      logged reason and the daemon starts cold.  With
      [snapshot_every_s] the same file is additionally rewritten
      periodically while serving, so a crash loses at most one
      interval of warmth.

    {2 Self-healing}

    - {b Crash isolation}: an exception escaping a worker's loop —
      including chaos-injected faults — is caught at the domain
      boundary.  The in-flight request is answered with a structured
      [worker_crashed] error, queued jobs move to surviving workers,
      and the acceptor joins and respawns the domain onto the same
      worker slot (same table segment, same routing).  Each worker
      has a sliding-window respawn budget; exhausting it shuts the
      daemon down and makes {!run} raise {!Fatal} after the drain.
    - {b Deadlines}: a request-supplied [deadline_ms] and/or the
      server-wide [request_timeout_s] bound each compute op.  Exact-CC
      searches poll a cooperative cancel token and answer a
      [timed_out] error carrying the certified bounds found so far;
      jobs whose deadline expires while queued are shed without
      computing.
    - {b Stalled readers}: connection sockets are nonblocking and
      reply writes carry a deadline ([write_timeout_s]) — a client
      that stops reading is disconnected, never parking a domain.
    - {b Oversized lines}: a request line larger than
      [max_line_bytes] is answered with a [line_too_long] error and
      skipped; the connection survives.
    - {b Chaos}: with [chaos] armed, deterministic fault-injection
      sites ({!Commx_util.Faults}) fire inside worker loops (crash
      path), at result-cache insertion (contained) and in periodic
      snapshot writes (logged skip), exercising all of the above
      under a fixed seed.

    {2 Observability}

    - {b Structured logs}: every daemon event goes through the
      {!Commx_util.Logging} logger in the config (default: JSON lines
      on stderr) — respawns, snapshots, drains, client disconnects.
      With [slow_ms] set, any request slower than that emits exactly
      one [msg = "slow_query"] warn line carrying the op, table tag,
      nodes, table hits, certified bounds and outcome.
    - {b Metrics exposition}: with [metrics_socket] (Unix) and/or
      [metrics_port] (loopback TCP) set, the acceptor also answers
      [GET /metrics] (Prometheus text format rendered by {!Obs}: every
      telemetry counter/gauge/histogram, per-op latency histograms
      labeled by op and outcome, per-worker queue-depth/in-flight
      gauges, cache hit ratio, table occupancy, snapshot age) and
      [GET /healthz] (JSON readiness: workers alive, queues below the
      shed threshold, snapshot fresh; 200/503).
    - {b Flight recorder}: the last [trace_ring] completed requests
      are kept as parented queue-wait/exec/reply-write span chains,
      returned as a Chrome trace document by the [dump_trace] op and
      dumped to [trace_dump_path] on worker crash and fatal exit. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains, >= 1 *)
  snapshot_path : string option;
      (** warm-state file: loaded at start, written on graceful stop *)
  cache_capacity : int;  (** result-cache entries, >= 1 *)
  table_budget : int option;
      (** per-segment transposition-table entry budget ([None] =
          unbounded), as {!Commx_util.Txtable.create} *)
  max_queue : int;  (** per-worker admission bound, >= 1 *)
  drain_timeout_s : float;
      (** max wait for in-flight work on shutdown *)
  request_timeout_s : float option;
      (** server-side default compute deadline per request; a
          request's own [deadline_ms] can only tighten it *)
  write_timeout_s : float;
      (** max wall time for one reply write before the connection is
          declared dead (slowloris defense) *)
  max_line_bytes : int;
      (** request-line size bound; larger lines are answered with
          [line_too_long] and skipped *)
  snapshot_every_s : float option;
      (** also write the snapshot every this many seconds while
          serving ([None] = only on graceful stop) *)
  respawn_budget : int;
      (** crashed-worker respawns allowed per sliding window before
          the daemon gives up ({!Fatal}) *)
  respawn_window_s : float;  (** the sliding window for the budget *)
  chaos : Commx_util.Faults.t option;
      (** deterministic fault injection at the serve chaos sites
          ([None] = off) *)
  logger : Commx_util.Logging.t;
      (** sink for every daemon event (structured JSON lines) *)
  metrics_socket : string option;
      (** Unix socket path answering [GET /metrics] / [GET /healthz] *)
  metrics_port : int option;
      (** loopback TCP port answering the same, 1..65535 *)
  slow_ms : float option;
      (** slow-query threshold: requests slower than this log one
          [slow_query] warn line ([None] = off) *)
  trace_ring : int;
      (** flight-recorder capacity in requests (0 = recording off) *)
  trace_dump_path : string option;
      (** where to dump the flight recorder on crash / fatal exit *)
}

exception Fatal of string
(** Raised by {!run} — after draining and snapshotting — when the
    daemon can no longer heal itself: a worker exhausted its respawn
    budget.  The CLI turns this into a nonzero exit. *)

val config :
  socket_path:string ->
  ?workers:int ->
  ?snapshot_path:string ->
  ?cache_capacity:int ->
  ?table_budget:int ->
  ?max_queue:int ->
  ?drain_timeout_s:float ->
  ?request_timeout_s:float ->
  ?write_timeout_s:float ->
  ?max_line_bytes:int ->
  ?snapshot_every_s:float ->
  ?respawn_budget:int ->
  ?respawn_window_s:float ->
  ?chaos:Commx_util.Faults.t ->
  ?logger:Commx_util.Logging.t ->
  ?metrics_socket:string ->
  ?metrics_port:int ->
  ?slow_ms:float ->
  ?trace_ring:int ->
  ?trace_dump_path:string ->
  unit ->
  config
(** Defaults: 2 workers, no snapshot, 1024 cache entries, unbounded
    tables, 64-deep queues, 30 s drain, no default request deadline,
    5 s write timeout, 1 MiB line bound, no periodic snapshots, 3
    respawns per 60 s window, no chaos, a fresh
    [Commx_util.Logging.create ()] (info-level JSON lines on stderr),
    no metrics listeners, no slow-query log, a 256-request flight
    recorder, no crash dump path.
    @raise Invalid_argument on out-of-range values. *)

val protocol_version : int
(** Wire protocol version, reported by the [stats] op. *)

val snapshot_format : string
(** Format marker of the server snapshot file
    (["ccmx-serve-snapshot"]). *)

val snapshot_version : int
(** Version stamped into and required from server snapshot files. *)

val run : ?stop:bool Atomic.t -> config -> unit
(** Serve until [stop] becomes [true] (set it from a signal handler or
    another domain) or a client sends the [shutdown] op; then drain
    in-flight requests (cancelling any search still running at the
    drain deadline), write the snapshot and return.  Removes any
    stale file at [socket_path] before binding.
    @raise Fatal when shutdown was forced by an exhausted respawn
    budget (after draining and snapshotting).
    @raise Unix.Unix_error when the socket cannot be created. *)
