(** The [ccmx serve] daemon: a persistent CC-oracle behind a Unix
    socket.

    One process keeps the expensive state — the transposition-table
    arrangement of the exact-CC engine and a content-addressed result
    cache — warm across any number of {!Wire} queries, so a fleet of
    short-lived clients (experiment scripts, CI, notebooks) shares one
    set of searches instead of each recomputing from cold.

    {2 Architecture}

    - The {b acceptor} (caller's domain) owns the listening socket and
      every connection: a [select] loop reads request lines, parses
      them, answers the trivial ops ([ping]/[stats]/[shutdown]) inline
      and dispatches compute ops to workers.  It polls the stop flag
      between select rounds, so SIGTERM/SIGINT handlers only need to
      flip an [Atomic].
    - {b Worker domains} each own one {!Commx_util.Txtable} segment
      (Txtable is not thread-safe, so segments are never shared).
      Exact-CC requests route by their table tag ([tag mod workers]):
      the same canonical matrix always lands on the same segment and
      therefore always finds its own warm entries.  Other ops route by
      a hash of their content key.
    - {b Replies} go out strictly in request order per connection
      (sequence numbers; finished replies buffer until their turn), so
      clients may pipeline blindly.  A broken client pipe marks only
      that connection dead — EPIPE never kills the daemon.
    - {b Admission}: each worker queue is bounded; requests beyond the
      bound are answered immediately with an error instead of piling
      up.
    - {b Snapshot}: on graceful drain the daemon persists tags, result
      cache and all table segments to one versioned JSON file
      (atomically, via {!Commx_util.Json.Atomic}); on restart the file
      is validated and the segments redistributed, so cache warmth
      survives restarts — even across a change in worker count.
      Corrupt or version-mismatched snapshots are rejected with a
      logged reason and the daemon starts cold. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains, >= 1 *)
  snapshot_path : string option;
      (** warm-state file: loaded at start, written on graceful stop *)
  cache_capacity : int;  (** result-cache entries, >= 1 *)
  table_budget : int option;
      (** per-segment transposition-table entry budget ([None] =
          unbounded), as {!Commx_util.Txtable.create} *)
  max_queue : int;  (** per-worker admission bound, >= 1 *)
  drain_timeout_s : float;
      (** max wait for in-flight work on shutdown *)
  log : level:string -> string -> unit;
}

val default_log : level:string -> string -> unit
(** One JSON object per line on stderr: [{"ts", "level", "msg"}]. *)

val config :
  socket_path:string ->
  ?workers:int ->
  ?snapshot_path:string ->
  ?cache_capacity:int ->
  ?table_budget:int ->
  ?max_queue:int ->
  ?drain_timeout_s:float ->
  ?log:(level:string -> string -> unit) ->
  unit ->
  config
(** Defaults: 2 workers, no snapshot, 1024 cache entries, unbounded
    tables, 64-deep queues, 30 s drain, {!default_log}.
    @raise Invalid_argument on out-of-range values. *)

val protocol_version : int
(** Wire protocol version, reported by the [stats] op. *)

val snapshot_format : string
(** Format marker of the server snapshot file
    (["ccmx-serve-snapshot"]). *)

val snapshot_version : int
(** Version stamped into and required from server snapshot files. *)

val run : ?stop:bool Atomic.t -> config -> unit
(** Serve until [stop] becomes [true] (set it from a signal handler or
    another domain) or a client sends the [shutdown] op; then drain
    in-flight requests, write the snapshot and return.  Removes any
    stale file at [socket_path] before binding.
    @raise Unix.Unix_error when the socket cannot be created. *)
