(** Content-addressed result cache and table-tag registry of the serve
    daemon.

    The cache maps a content key — for exact-CC queries,
    {!Commx_comm.Exact_cc.canonical_key} of the board, so structurally
    equal matrices alias — to the op-specific result fields of a
    finished request.  Bounded FIFO: at capacity the oldest entry is
    evicted.  All operations are mutex-protected; the acceptor and
    every worker domain hit the same instance.

    {!Tags} allocates the transposition-table key tags that let one
    process-wide set of warm {!Commx_util.Txtable} segments serve many
    distinct matrices: each distinct canonical key gets the next
    sequential tag, forever (tags are {e never} evicted — a table key
    salted with tag [t] must mean the same board for the lifetime of
    the table, snapshots included). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : t -> string -> Commx_util.Json.t option
(** Lookup; records a hit or a miss. *)

val add : t -> string -> Commx_util.Json.t -> unit
(** Insert, evicting the oldest entry at capacity.  Re-adding an
    existing key replaces its value without consuming capacity. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats

val to_json : t -> Commx_util.Json.t
(** Entries oldest-first, so a load replays the same FIFO order. *)

val load : capacity:int -> Commx_util.Json.t -> t
(** Rebuild from {!to_json} output with fresh statistics.
    @raise Failure on malformed input. *)

module Tags : sig
  type t

  val create : unit -> t

  val tag : t -> string -> int
  (** The tag for a content key, allocating the next sequential one on
      first sight.
      @raise Failure if the {!Commx_comm.Exact_cc.max_key_tag} space is
      exhausted (2^30 distinct matrices). *)

  val count : t -> int

  val to_json : t -> Commx_util.Json.t

  val load : Commx_util.Json.t -> t
  (** Rebuild from {!to_json} output.  Saved key-to-tag bindings are
      preserved exactly — table snapshots embed these tags in their
      keys.
      @raise Failure on malformed input or duplicate tags. *)
end
