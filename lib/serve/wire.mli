(** JSON-lines wire protocol of the [ccmx serve] daemon.

    One request per line, one reply per line, replies in request order
    per connection.  Every request is a JSON object with an ["op"]
    field selecting the query and an optional ["id"] the daemon echoes
    back verbatim (so a pipelining client can match replies however it
    likes even though order already suffices).  Replies carry
    ["ok": true] plus op-specific fields, or ["ok": false] with an
    ["error"] string.  The full request/response schemas are documented
    in EXPERIMENTS.md; this module is the single point that parses and
    prints them, so tests, the daemon and the example client cannot
    drift apart. *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Dump_trace
      (** Dump the daemon's flight recorder: the reply's ["trace"]
          field is a Chrome trace-event document of the recent
          requests' parented queue-wait/search/reply-write spans. *)
  | Exact_cc of { matrix : Commx_util.Bitmat.t; use_cache : bool }
      (** Exact deterministic CC of a boolean truth matrix
          (rows of ['0']/['1'] strings).  [use_cache = false] bypasses
          the result cache while still using the warm transposition
          table — the knob the warm-table tests and benchmarks use. *)
  | Singular of { matrix : Commx_linalg.Zmatrix.t }
      (** Exact singularity / rank / determinant of an integer matrix
          (entries as ints or decimal strings). *)
  | Lemma32 of { n : int; k : int; seed : int }
      (** Lemma 3.2 spot check on the seeded random hard instance:
          criterion vs. ground truth. *)
  | Lower_bounds of { matrix : Commx_util.Bitmat.t }
      (** Fooling-set and rank lower bounds ({!Commx_comm.Rank_bound}
          report) of a boolean matrix. *)
  | Protocol_run of {
      proto : string;  (** ["trivial"] or ["fingerprint"] *)
      n : int;
      k : int;
      seed : int;
      epsilon : float;
    }  (** Run a singularity protocol on the seeded instance and count
          bits through the channel. *)
  | Rank_batch of { matrices : Commx_util.Bitmat.t array }
      (** GF(2) ranks of many boolean matrices in one request
          ([{"matrices": [["01","10"], ...]}]), answered by the
          amortized {!Commx_util.Bitmat.rank_batch} kernel — one
          round trip and one cache entry for the whole batch. *)

type envelope = {
  id : Commx_util.Json.t;
  op : string;
  deadline_ms : int option;
      (** optional per-request wall budget in milliseconds, counted
          from the moment the daemon parses the request; [None] leaves
          the server-side default in force *)
  req : request;
}

val max_matrix_side : int
(** Hard cap (64) on rows and columns of matrices accepted over the
    wire, bounding per-request work before any handler runs. *)

val max_batch_size : int
(** Hard cap (1024) on the number of matrices in one [rank_batch]
    request, for the same reason. *)

val parse : string -> (envelope, Commx_util.Json.t * string) result
(** Parse one request line.  [Error (id, msg)] carries the request id
    when one could be recovered (so the error reply still correlates)
    and a message fit to send back verbatim. *)

val ok : id:Commx_util.Json.t -> op:string ->
  (string * Commx_util.Json.t) list -> Commx_util.Json.t
(** Success reply: [{"id": .., "op": .., "ok": true, ..fields}]. *)

val error :
  ?code:string ->
  ?fields:(string * Commx_util.Json.t) list ->
  id:Commx_util.Json.t ->
  string ->
  Commx_util.Json.t
(** Failure reply: [{"id": .., "ok": false, "error": msg}], plus
    ["code"] when [?code] is given and any extra [?fields].  The
    machine-readable codes the daemon uses — ["timed_out"] (with
    ["lower_bound"]/["upper_bound"] fields when the search certified
    bounds), ["overloaded"], ["worker_crashed"], ["line_too_long"],
    ["too_large"] (exact_cc whose {e canonical} board exceeds the
    engine cap, rejected at admission with
    ["canon_rows"]/["canon_cols"]/["limit"] fields) — let clients
    branch without parsing English; errors without a code are request
    rejections (parse/validation). *)

val error_code : Commx_util.Json.t -> string option
(** The ["code"] of a failure reply, if the reply is a failure and
    carries one — the client-side dual of [error ?code]. *)

val to_line : Commx_util.Json.t -> string
(** Compact serialization plus the terminating newline. *)
