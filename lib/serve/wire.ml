(* JSON-lines request/response codec for ccmx serve.

   Parsing is strict: unknown ops, missing fields, ragged matrices and
   oversized inputs are rejected with a message the daemon sends back
   verbatim, never an exception across the module boundary.  The codec
   deliberately knows nothing about sockets or caches — it maps lines
   to typed requests and replies to lines, and the same functions serve
   the daemon, the tests and the example client. *)

module Json = Commx_util.Json
module Bm = Commx_util.Bitmat
module Zm = Commx_linalg.Zmatrix
module B = Commx_bigint.Bigint

type request =
  | Ping
  | Stats
  | Shutdown
  | Dump_trace
  | Exact_cc of { matrix : Bm.t; use_cache : bool }
  | Singular of { matrix : Zm.t }
  | Lemma32 of { n : int; k : int; seed : int }
  | Lower_bounds of { matrix : Bm.t }
  | Protocol_run of { proto : string; n : int; k : int; seed : int; epsilon : float }
  | Rank_batch of { matrices : Bm.t array }

type envelope = {
  id : Json.t;
  op : string;
  deadline_ms : int option;
  req : request;
}

let max_matrix_side = 64
let max_batch_size = 1024

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field obj key = Json.member key obj

let int_field ?default obj key =
  match (field obj key, default) with
  | Some (Json.Int v), _ -> v
  | None, Some d -> d
  | None, None -> bad "missing integer field %S" key
  | Some _, _ -> bad "field %S must be an integer" key

let float_field ?default obj key =
  match (field obj key, default) with
  | Some (Json.Float v), _ -> v
  | Some (Json.Int v), _ -> float_of_int v
  | None, Some d -> d
  | None, None -> bad "missing number field %S" key
  | Some _, _ -> bad "field %S must be a number" key

let bool_field ~default obj key =
  match field obj key with
  | Some (Json.Bool v) -> v
  | None -> default
  | Some _ -> bad "field %S must be a boolean" key

let string_field ?default obj key =
  match (field obj key, default) with
  | Some (Json.String s), _ -> s
  | None, Some d -> d
  | None, None -> bad "missing string field %S" key
  | Some _, _ -> bad "field %S must be a string" key

(* ["0110", "1001", ...] -> Bitmat, strictly rectangular, 0/1 only. *)
let bit_matrix_of_rows rows =
  let rows =
    List.map
      (function Json.String s -> s | _ -> bad "matrix rows must be strings")
      rows
  in
  match rows with
  | [] -> bad "matrix has no rows"
  | first :: _ ->
      let nr = List.length rows and nc = String.length first in
      if nc = 0 then bad "matrix has empty rows";
      if nr > max_matrix_side || nc > max_matrix_side then
        bad "matrix exceeds %dx%d wire limit" max_matrix_side max_matrix_side;
      if List.exists (fun r -> String.length r <> nc) rows then
        bad "matrix rows have unequal lengths";
      List.iter
        (String.iter (fun c ->
             if c <> '0' && c <> '1' then
               bad "matrix rows must contain only '0' and '1'"))
        rows;
      let a = Array.of_list rows in
      Bm.init nr nc (fun i j -> a.(i).[j] = '1')

let bit_matrix obj =
  match field obj "matrix" with
  | Some (Json.List l) -> bit_matrix_of_rows l
  | Some _ -> bad "field \"matrix\" must be a list of row strings"
  | None -> bad "missing field \"matrix\""

(* [["01","10"], ...] -> Bitmat array; every board is validated by the
   single-matrix rules, and the batch count itself is capped so one
   line cannot queue unbounded work. *)
let bit_matrices obj =
  let items =
    match field obj "matrices" with
    | Some (Json.List l) -> l
    | Some _ -> bad "field \"matrices\" must be a list of matrices"
    | None -> bad "missing field \"matrices\""
  in
  if List.length items > max_batch_size then
    bad "batch exceeds %d-matrix wire limit" max_batch_size;
  Array.of_list
    (List.map
       (function
         | Json.List rows -> bit_matrix_of_rows rows
         | _ -> bad "each matrix must be a list of row strings")
       items)

(* [[1, 2], ["-3", 4], ...] -> Zmatrix; entries are ints or decimal
   strings (bigints larger than a native int must come as strings). *)
let int_matrix obj =
  let entry = function
    | Json.Int v -> B.of_int v
    | Json.String s -> (
        try B.of_string s
        with _ -> bad "matrix entry %S is not a decimal integer" s)
    | _ -> bad "matrix entries must be integers or decimal strings"
  in
  let rows =
    match field obj "matrix" with
    | Some (Json.List l) -> l
    | Some _ -> bad "field \"matrix\" must be a list of rows"
    | None -> bad "missing field \"matrix\""
  in
  let rows =
    List.map
      (function
        | Json.List r -> Array.of_list (List.map entry r)
        | _ -> bad "matrix rows must be lists")
      rows
  in
  match rows with
  | [] -> bad "matrix has no rows"
  | first :: _ ->
      let nr = List.length rows and nc = Array.length first in
      if nc = 0 then bad "matrix has empty rows";
      if nr > max_matrix_side || nc > max_matrix_side then
        bad "matrix exceeds %dx%d wire limit" max_matrix_side max_matrix_side;
      if List.exists (fun r -> Array.length r <> nc) rows then
        bad "matrix rows have unequal lengths";
      let a = Array.of_list rows in
      Zm.init nr nc (fun i j -> a.(i).(j))

let request_of obj op =
  match op with
  | "ping" -> Ping
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | "dump_trace" -> Dump_trace
  | "exact_cc" ->
      Exact_cc
        { matrix = bit_matrix obj;
          use_cache = bool_field ~default:true obj "use_cache" }
  | "singular" -> Singular { matrix = int_matrix obj }
  | "lemma32" ->
      Lemma32
        { n = int_field ~default:7 obj "n";
          k = int_field ~default:2 obj "k";
          seed = int_field ~default:0 obj "seed" }
  | "lower_bounds" -> Lower_bounds { matrix = bit_matrix obj }
  | "protocol" ->
      Protocol_run
        { proto = string_field ~default:"trivial" obj "protocol";
          n = int_field ~default:7 obj "n";
          k = int_field ~default:2 obj "k";
          seed = int_field ~default:0 obj "seed";
          epsilon = float_field ~default:0.01 obj "epsilon" }
  | "rank_batch" -> Rank_batch { matrices = bit_matrices obj }
  | other -> bad "unknown op %S" other

(* Optional per-request deadline, in milliseconds of wall budget from
   the moment the daemon parses the request.  0 or negative is a
   client bug worth rejecting loudly rather than an instant timeout. *)
let deadline_of obj =
  match field obj "deadline_ms" with
  | None -> None
  | Some (Json.Int v) ->
      if v <= 0 then bad "field \"deadline_ms\" must be > 0" else Some v
  | Some _ -> bad "field \"deadline_ms\" must be an integer"

let parse line =
  match Json.of_string line with
  | exception Failure msg -> Error (Json.Null, "malformed JSON: " ^ msg)
  | Json.Obj _ as obj -> (
      let id = Option.value (field obj "id") ~default:Json.Null in
      match field obj "op" with
      | Some (Json.String op) -> (
          try Ok { id; op; deadline_ms = deadline_of obj; req = request_of obj op }
          with Bad msg -> Error (id, msg))
      | Some _ -> Error (id, "field \"op\" must be a string")
      | None -> Error (id, "missing field \"op\""))
  | _ -> Error (Json.Null, "request must be a JSON object")

let ok ~id ~op fields =
  Json.Obj
    (("id", id) :: ("op", Json.String op) :: ("ok", Json.Bool true) :: fields)

let error ?code ?(fields = []) ~id msg =
  let tail =
    match code with
    | None -> fields
    | Some c -> ("code", Json.String c) :: fields
  in
  Json.Obj
    (("id", id) :: ("ok", Json.Bool false) :: ("error", Json.String msg)
    :: tail)

let error_code reply =
  match reply with
  | Json.Obj _ -> (
      match (Json.member "ok" reply, Json.member "code" reply) with
      | Some (Json.Bool false), Some (Json.String c) -> Some c
      | _ -> None)
  | _ -> None

let to_line doc = Json.to_string doc ^ "\n"
