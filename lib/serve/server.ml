(* The serve daemon.  Concurrency layout:

     acceptor (caller's domain)
       select loop: accept / read lines / parse
       ping, stats, shutdown answered inline
       compute ops -> worker queues (affinity: table tag mod workers)
     worker domains (one Txtable segment each)
       pop job, result-cache lookup, else compute, deliver reply

   Locks, leaf-only and never nested with each other:
     conn.cm     sequence numbers, pending replies, inflight count
     worker.qm   job queue + published table stats
     latm        latency ring
     (Cache and Tags carry their own internal mutexes.)

   Replies are written by whichever worker finishes the job, but
   strictly in per-connection request order: a finished reply parks in
   [conn.pending] until every lower sequence number has been written.
   A failed write (client gone: EPIPE/ECONNRESET) marks the connection
   dead and drops its parked replies — one lost client never unsettles
   the daemon or other connections. *)

module Json = Commx_util.Json
module Bm = Commx_util.Bitmat
module Tx = Commx_util.Txtable
module Clock = Commx_util.Clock
module Telemetry = Commx_util.Telemetry
module Stats = Commx_util.Stats
module Sigguard = Commx_util.Sigguard
module Logging = Commx_util.Logging
module Prng = Commx_util.Prng
module Pool = Commx_util.Pool
module Faults = Commx_util.Faults
module Zm = Commx_linalg.Zmatrix
module B = Commx_bigint.Bigint
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module Bounds = Commx_core.Bounds
module E = Commx_comm.Exact_cc
module Protocol = Commx_comm.Protocol
module Truth_matrix = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint

type config = {
  socket_path : string;
  workers : int;
  snapshot_path : string option;
  cache_capacity : int;
  table_budget : int option;
  max_queue : int;
  drain_timeout_s : float;
  request_timeout_s : float option;
  write_timeout_s : float;
  max_line_bytes : int;
  snapshot_every_s : float option;
  respawn_budget : int;
  respawn_window_s : float;
  chaos : Faults.t option;
  logger : Logging.t;
  metrics_socket : string option;
  metrics_port : int option;
  slow_ms : float option;
  trace_ring : int;
  trace_dump_path : string option;
}

exception Fatal of string

let () =
  Printexc.register_printer (function
    | Fatal msg -> Some (Printf.sprintf "Server.Fatal(%s)" msg)
    | _ -> None)

let protocol_version = 1
let snapshot_format = "ccmx-serve-snapshot"

(* v2: Exact_cc.max_side went 16 -> 20, which moves the column masks
   and the tag salt within packed table keys — v1 segment entries
   would decode to different subproblems, so old snapshots must not
   load. *)
let snapshot_version = 2

let config ~socket_path ?(workers = 2) ?snapshot_path ?(cache_capacity = 1024)
    ?table_budget ?(max_queue = 64) ?(drain_timeout_s = 30.0)
    ?request_timeout_s ?(write_timeout_s = 5.0)
    ?(max_line_bytes = 1 lsl 20) ?snapshot_every_s ?(respawn_budget = 3)
    ?(respawn_window_s = 60.0) ?chaos ?logger ?metrics_socket ?metrics_port
    ?slow_ms ?(trace_ring = 256) ?trace_dump_path () =
  let logger =
    match logger with Some l -> l | None -> Logging.create ()
  in
  if workers < 1 then invalid_arg "Server.config: workers < 1";
  if cache_capacity < 1 then invalid_arg "Server.config: cache_capacity < 1";
  if max_queue < 1 then invalid_arg "Server.config: max_queue < 1";
  (match table_budget with
  | Some b when b < 1 -> invalid_arg "Server.config: table_budget < 1"
  | _ -> ());
  (match request_timeout_s with
  | Some s when s <= 0.0 ->
      invalid_arg "Server.config: request_timeout_s must be > 0"
  | _ -> ());
  if write_timeout_s <= 0.0 then
    invalid_arg "Server.config: write_timeout_s must be > 0";
  if max_line_bytes < 1024 then
    invalid_arg "Server.config: max_line_bytes must be >= 1024";
  (match snapshot_every_s with
  | Some s when s <= 0.0 ->
      invalid_arg "Server.config: snapshot_every_s must be > 0"
  | _ -> ());
  if respawn_budget < 0 then
    invalid_arg "Server.config: respawn_budget must be >= 0";
  if respawn_window_s <= 0.0 then
    invalid_arg "Server.config: respawn_window_s must be > 0";
  (match metrics_port with
  | Some p when p < 1 || p > 65535 ->
      invalid_arg "Server.config: metrics_port out of range"
  | _ -> ());
  (match slow_ms with
  | Some ms when ms < 0.0 ->
      invalid_arg "Server.config: slow_ms must be >= 0"
  | _ -> ());
  if trace_ring < 0 then
    invalid_arg "Server.config: trace_ring must be >= 0";
  { socket_path; workers; snapshot_path; cache_capacity; table_budget;
    max_queue; drain_timeout_s; request_timeout_s; write_timeout_s;
    max_line_bytes; snapshot_every_s; respawn_budget; respawn_window_s;
    chaos; logger; metrics_socket; metrics_port; slow_ms; trace_ring;
    trace_dump_path }

(* Robustness counters.  Interned process-wide, so they flow into the
   stats reply's "counters" object like every other telemetry counter;
   tests and the chaos soak read them there. *)
let c_overloaded = Telemetry.counter "serve.overloaded"
let c_crashes = Telemetry.counter "serve.worker_crashes"
let c_respawns = Telemetry.counter "serve.worker_respawns"
let c_timeouts = Telemetry.counter "serve.deadline_timeouts"
let c_snapshots = Telemetry.counter "serve.snapshots_written"
let c_oversized = Telemetry.counter "serve.oversized_lines"
let c_too_large = Telemetry.counter "serve.too_large"
let c_write_timeouts = Telemetry.counter "serve.write_timeouts"
let c_chaos_cache = Telemetry.counter "serve.chaos_cache_skips"
let c_chaos_snapshot = Telemetry.counter "serve.chaos_snapshot_skips"
let c_slow = Telemetry.counter "serve.slow_queries"

(* ------------------------------------------------------------------ *)
(* Connections and jobs                                                *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  rbuf : Buffer.t;
  cm : Mutex.t;
  mutable next_seq : int;  (* next sequence number to hand out *)
  mutable next_write : int;  (* next sequence number to put on the wire *)
  pending : (int, string) Hashtbl.t;  (* finished out-of-order replies *)
  mutable write_ok : bool;
  mutable eof : bool;
  mutable discarding : bool;  (* skipping the rest of an oversized line *)
  mutable inflight : int;
}

type job = {
  env : Wire.envelope;
  jconn : conn;
  seq : int;
  t0 : float;
  t0_ns : int;  (* same instant as [t0], for flight-recorder spans *)
  deadline : float option;  (* absolute monotonic compute deadline *)
  tag : int option;  (* exact-CC table tag *)
  cache_key : string option;
  use_cache : bool;
}

type worker = {
  wid : int;
  table : Tx.t;
  tm : Mutex.t;  (* table access: compute vs. periodic snapshot *)
  q : job Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  mutable queued : int;
  mutable current : job option;  (* in flight, for crash reporting *)
  mutable cur_cancel : Pool.Token.t option;  (* to unstick a drain *)
  mutable alive : bool;  (* false once the domain body has exited *)
  mutable jobs_done : int;  (* chaos site numbering, survives respawn *)
  mutable pub_stats : Tx.stats;  (* published for the stats op *)
  mutable pub_entries : int;
}

let latency_ring = 4096

type t = {
  cfg : config;
  stop : bool Atomic.t;
  cache : Cache.t;
  tags : Cache.Tags.t;
  workers : worker array;
  latm : Mutex.t;
  lat : float array;  (* seconds, ring buffer *)
  mutable lat_n : int;  (* total observations ever *)
  requests : int Atomic.t;
  errors : int Atomic.t;
  started : float;
  hist : Telemetry.histogram;
  recorder : Obs.Recorder.t;
  mutable last_snapshot : float;  (* monotonic, acceptor-only *)
}

(* ------------------------------------------------------------------ *)
(* Socket writes                                                       *)
(* ------------------------------------------------------------------ *)

(* A reply write that cannot finish before [deadline] — the client
   stopped reading (slowloris) while our socket buffer filled — is a
   dead connection, not a stalled worker. *)
exception Write_timeout

(* Connection fds are nonblocking: a full socket buffer surfaces as
   EAGAIN, and the write waits for writability only up to the
   deadline instead of parking the writing domain forever. *)
let rec write_all fd b pos len ~deadline =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n) ~deadline
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all fd b pos len ~deadline
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        let remain = deadline -. Clock.now_s () in
        if remain <= 0.0 then begin
          Telemetry.incr c_write_timeouts;
          raise Write_timeout
        end
        else begin
          (match Unix.select [] [ fd ] [] remain with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | _ -> ());
          write_all fd b pos len ~deadline
        end

let is_write_failure = function
  | Unix.Unix_error _ | Write_timeout -> true
  | e -> Sigguard.is_broken_pipe e

(* Park the reply under its sequence number, then put every
   consecutive ready reply on the wire.  [finish] marks the job as no
   longer in flight (same critical section, so the reaper never sees a
   reply-less idle connection). *)
let deliver t ?(finish = false) conn seq line =
  Mutex.lock conn.cm;
  if finish then conn.inflight <- conn.inflight - 1;
  if conn.write_ok then begin
    Hashtbl.replace conn.pending seq line;
    let deadline = Clock.now_s () +. t.cfg.write_timeout_s in
    try
      let rec flush () =
        match Hashtbl.find_opt conn.pending conn.next_write with
        | Some s ->
            Hashtbl.remove conn.pending conn.next_write;
            let b = Bytes.of_string s in
            write_all conn.fd b 0 (Bytes.length b) ~deadline;
            conn.next_write <- conn.next_write + 1;
            flush ()
        | None -> ()
      in
      flush ()
    with e when is_write_failure e ->
      conn.write_ok <- false;
      Hashtbl.reset conn.pending;
      Logging.info t.cfg.logger
        ~fields:[ ("conn", Json.Int conn.cid) ]
        (Printf.sprintf "conn %d: client gone (%s), dropping its replies"
           conn.cid (Printexc.to_string e))
  end;
  Mutex.unlock conn.cm

let alloc_seq ?(inflight = false) conn =
  Mutex.lock conn.cm;
  let s = conn.next_seq in
  conn.next_seq <- s + 1;
  if inflight then conn.inflight <- conn.inflight + 1;
  Mutex.unlock conn.cm;
  s

let record_latency t dt =
  Mutex.lock t.latm;
  t.lat.(t.lat_n mod latency_ring) <- dt;
  t.lat_n <- t.lat_n + 1;
  Mutex.unlock t.latm;
  Telemetry.observe t.hist (int_of_float (dt *. 1e6))

(* ------------------------------------------------------------------ *)
(* Content keys                                                        *)
(* ------------------------------------------------------------------ *)

let bitmat_key m =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (Printf.sprintf "%dx%d:" (Bm.rows m) (Bm.cols m));
  for i = 0 to Bm.rows m - 1 do
    if i > 0 then Buffer.add_char buf '.';
    for j = 0 to Bm.cols m - 1 do
      Buffer.add_char buf (if Bm.get m i j then '1' else '0')
    done
  done;
  Buffer.contents buf

let zmatrix_key m =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (Printf.sprintf "%dx%d:" (Zm.rows m) (Zm.cols m));
  for i = 0 to Zm.rows m - 1 do
    for j = 0 to Zm.cols m - 1 do
      Buffer.add_string buf (B.to_string (Zm.get m i j));
      Buffer.add_char buf ','
    done
  done;
  Buffer.contents buf

let content_key (req : Wire.request) =
  match req with
  | Wire.Ping | Wire.Stats | Wire.Shutdown | Wire.Dump_trace -> None
  | Wire.Exact_cc { matrix; _ } ->
      (* Canonical, not literal: structurally equal boards alias. *)
      Some ("exact_cc:" ^ E.canonical_key matrix)
  | Wire.Singular { matrix } -> Some ("singular:" ^ zmatrix_key matrix)
  | Wire.Lemma32 { n; k; seed } ->
      Some (Printf.sprintf "lemma32:%d:%d:%d" n k seed)
  | Wire.Lower_bounds { matrix } -> Some ("lower_bounds:" ^ bitmat_key matrix)
  | Wire.Protocol_run { proto; n; k; seed; epsilon } ->
      Some (Printf.sprintf "protocol:%s:%d:%d:%d:%h" proto n k seed epsilon)
  | Wire.Rank_batch { matrices } ->
      Some
        ("rank_batch:"
        ^ String.concat "|"
            (Array.to_list (Array.map bitmat_key matrices)))

(* ------------------------------------------------------------------ *)
(* Compute handlers (worker side)                                      *)
(* ------------------------------------------------------------------ *)

let require_params ~n ~k =
  if not (Params.is_valid ~n ~k) then
    failwith (Printf.sprintf "invalid parameters n=%d k=%d" n k);
  Params.make ~n ~k

(* Each handler returns (cacheable result fields, per-request fields).
   Only the former go into the result cache; a cache hit re-serves them
   with fresh per-request fields. *)
let exec w (env : Wire.envelope) ~tag ~cancel =
  match env.req with
  | Wire.Ping | Wire.Stats | Wire.Shutdown | Wire.Dump_trace ->
      (* Answered inline by the acceptor; never queued. *)
      assert false
  | Wire.Exact_cc { matrix; _ } ->
      let key_tag = Option.value tag ~default:0 in
      let v, st = E.search ~table:w.table ~key_tag ?cancel matrix in
      ( [ ("value", Json.Int v);
          ("canon_rows", Json.Int st.E.canon_rows);
          ("canon_cols", Json.Int st.E.canon_cols);
          ("root_lower", Json.Int st.E.root_lower);
          ("root_upper", Json.Int st.E.root_upper) ],
        [ ("nodes", Json.Int st.E.nodes);
          ("table_hits", Json.Int st.E.table_hits);
          ("table_misses", Json.Int st.E.table_misses) ] )
  | Wire.Singular { matrix } ->
      if not (Zm.is_square matrix) then failwith "matrix is not square";
      let d = Zm.det matrix in
      ( [ ("dimension", Json.Int (Zm.rows matrix));
          ("rank", Json.Int (Zm.rank matrix));
          ("det", Json.String (B.to_string d));
          ("singular", Json.Bool (B.is_zero d)) ],
        [] )
  | Wire.Lemma32 { n; k; seed } ->
      let p = require_params ~n ~k in
      let g = Prng.create seed in
      let f = H.random_free g p in
      let crit = L32.criterion p f in
      let direct = L32.is_singular_direct (H.build_m p f) in
      ( [ ("criterion", Json.Bool crit);
          ("direct", Json.Bool direct);
          ("agrees", Json.Bool (crit = direct)) ],
        [] )
  | Wire.Lower_bounds { matrix } ->
      let nr = Bm.rows matrix and nc = Bm.cols matrix in
      let tm =
        Truth_matrix.build (List.init nr Fun.id) (List.init nc Fun.id)
          (fun i j -> Bm.get matrix i j)
      in
      (* The exact rectangle-cover bound enumerates covers; keep it to
         boards small enough that it cannot stall a worker. *)
      let r = Rank_bound.analyze tm ~exact_rect:(nr * nc <= 64) in
      ( [ ("gf2_rank", Json.Int r.Rank_bound.gf2);
          ("rational_rank", Json.Int r.Rank_bound.rational);
          ("log_rank_bits", Json.Float r.Rank_bound.log_rank);
          ("fooling_set", Json.Int r.Rank_bound.fooling);
          ("fooling_bits", Json.Float r.Rank_bound.fooling_bits);
          ("cover_bits", Json.Float r.Rank_bound.cover_bits);
          ("trivial_upper_bits", Json.Float r.Rank_bound.trivial_upper) ],
        [] )
  | Wire.Protocol_run { proto; n; k; seed; epsilon } ->
      let p = require_params ~n ~k in
      let g = Prng.create seed in
      let m = H.build_m p (H.random_free g p) in
      let alice, bob = Halves.split_pi0 m in
      let truth = Zm.is_singular m in
      let got, bits =
        match proto with
        | "trivial" -> Protocol.execute (Trivial.singularity ~k) alice bob
        | "fingerprint" ->
            let rp = Fingerprint.singularity ~n ~k ~epsilon in
            Protocol.execute
              (rp.Commx_comm.Randomized.run_seeded ~seed:(seed + 1))
              alice bob
        | other -> failwith (Printf.sprintf "unknown protocol %S" other)
      in
      ( [ ("protocol", Json.String proto);
          ("answer", Json.Bool got);
          ("truth", Json.Bool truth);
          ("agrees", Json.Bool (got = truth));
          ("bits", Json.Int bits);
          ("trivial_upper_bits", Json.Int (Bounds.trivial_upper_bits ~n ~k)) ],
        [] )
  | Wire.Rank_batch { matrices } ->
      let ranks = Bm.rank_batch matrices in
      ( [ ( "values",
            Json.List (Array.to_list (Array.map (fun v -> Json.Int v) ranks))
          );
          ("count", Json.Int (Array.length ranks)) ],
        [] )

let wall_us_field t0 =
  ("wall_us", Json.Int (int_of_float ((Clock.now_s () -. t0) *. 1e6)))

(* Chaos site on result-cache insertion: the result is already
   computed, so an injected fault here is contained — the entry is
   skipped (cold next time), the reply unaffected. *)
let cache_insert t job core =
  match job.cache_key with
  | None -> ()
  | Some key -> (
      match
        Faults.point t.cfg.chaos ~site:("serve:cache:" ^ key);
        Cache.add t.cache key (Json.Obj core)
      with
      | () -> ()
      | exception Faults.Injected site ->
          Telemetry.incr c_chaos_cache;
          Logging.warn t.cfg.logger
            (Printf.sprintf "chaos: cache insertion dropped at %s" site))

(* A reply's diagnostic integer ("nodes", "lower_bound", ...), when
   the handler produced one — for the slow-query log and trace spans,
   which must not care WHICH arm built the reply. *)
let reply_int reply key =
  match Json.member key reply with Some (Json.Int v) -> Some v | _ -> None

(* One line per slow request, at warn so the default logger shows it:
   the canonical key tag, search effort and certified bounds of the
   exact request that blew the budget, greppable as msg="slow_query". *)
let slow_query_log t job ~outcome ~wall reply =
  match t.cfg.slow_ms with
  | Some ms when wall *. 1000.0 > ms ->
      Telemetry.incr c_slow;
      let opt key =
        match reply_int reply key with
        | Some v -> [ (key, Json.Int v) ]
        | None -> []
      in
      Logging.warn t.cfg.logger
        ~fields:
          ([ ("op", Json.String job.env.Wire.op);
             ("id", job.env.Wire.id);
             ("conn", Json.Int job.jconn.cid);
             ("outcome", Json.String outcome);
             ("wall_ms", Json.Float (wall *. 1000.0));
             ( "tag",
               match job.tag with Some tg -> Json.Int tg | None -> Json.Null )
           ]
          @ opt "nodes" @ opt "table_hits" @ opt "lower_bound"
          @ opt "upper_bound")
        "slow_query"
  | _ -> ()

let process t w job =
  let env = job.env in
  let t_exec = Clock.now_ns () in
  let cached =
    if job.use_cache then Option.bind job.cache_key (Cache.find t.cache)
    else None
  in
  (* [span] names the middle trace span (what the worker actually did);
     [outcome] labels the latency histogram and the slow-query line. *)
  let outcome = ref "ok" and span = ref "exec" in
  let reply =
    match cached with
    | Some (Json.Obj core) ->
        (* The result-cache hit IS the warm-cache hit: no search runs,
           so no nodes expand and the per-request table counters report
           the one (result-cache) hit. *)
        outcome := "cache_hit";
        span := "cache_hit";
        let extra =
          match env.req with
          | Wire.Exact_cc _ ->
              [ ("nodes", Json.Int 0); ("table_hits", Json.Int 1);
                ("table_misses", Json.Int 0) ]
          | _ -> []
        in
        Wire.ok ~id:env.id ~op:env.op
          (core @ extra
          @ [ ("cache", Json.String "hit"); wall_us_field job.t0 ])
    | Some _ | None ->
        if
          match job.deadline with
          | Some d -> Clock.now_s () >= d
          | None -> false
        then begin
          (* Expired while queued: shed it without computing.  Cheap
             ops never reach here unless the queue really did starve
             them past their budget. *)
          Atomic.incr t.errors;
          Telemetry.incr c_timeouts;
          outcome := "shed";
          span := "shed";
          Wire.error ~code:"timed_out" ~id:env.id
            ~fields:[ wall_us_field job.t0 ]
            "deadline expired before compute started"
        end
        else begin
          (* Every exact-CC search gets a token even without a
             deadline, so the drain epilogue can always unstick a
             worker mid-search. *)
          let cancel =
            match env.req with
            | Wire.Exact_cc _ ->
                Some (Pool.Token.create ?deadline:job.deadline ())
            | _ -> None
          in
          (match env.req with
          | Wire.Exact_cc _ -> span := "search"
          | _ -> ());
          Mutex.lock w.qm;
          w.cur_cancel <- cancel;
          Mutex.unlock w.qm;
          let reply =
            Mutex.lock w.tm;
            match exec w env ~tag:job.tag ~cancel with
            | core, extra ->
                Mutex.unlock w.tm;
                cache_insert t job core;
                let label = if job.use_cache then "miss" else "bypass" in
                Wire.ok ~id:env.id ~op:env.op
                  (core @ extra
                  @ [ ("cache", Json.String label); wall_us_field job.t0 ])
            | exception E.Timed_out { lower; upper; nodes } ->
                Mutex.unlock w.tm;
                Atomic.incr t.errors;
                Telemetry.incr c_timeouts;
                outcome := "timed_out";
                Wire.error ~code:"timed_out" ~id:env.id
                  ~fields:
                    [ ("lower_bound", Json.Int lower);
                      ("upper_bound", Json.Int upper);
                      ("nodes", Json.Int nodes); wall_us_field job.t0 ]
                  (Printf.sprintf
                     "deadline exceeded: certified %d <= CC <= %d after %d \
                      nodes"
                     lower upper nodes)
            | exception e ->
                Mutex.unlock w.tm;
                Atomic.incr t.errors;
                outcome := "error";
                Wire.error ~id:env.id (Printexc.to_string e)
          in
          Mutex.lock w.qm;
          w.cur_cancel <- None;
          Mutex.unlock w.qm;
          reply
        end
  in
  let t_done = Clock.now_ns () in
  (* Latency and table stats are published BEFORE the reply leaves:
     a client that sees its reply and immediately asks for `stats`
     must find this request already counted. *)
  record_latency t (Clock.now_s () -. job.t0);
  Obs.observe_op ~op:env.op ~outcome:!outcome
    (int_of_float (Clock.ns_to_us (t_done - job.t0_ns)));
  let st = Tx.stats w.table and entries = Tx.length w.table in
  Mutex.lock w.qm;
  w.pub_stats <- st;
  w.pub_entries <- entries;
  Mutex.unlock w.qm;
  deliver t ~finish:true job.jconn job.seq (Wire.to_line reply);
  let t_written = Clock.now_ns () in
  if Obs.Recorder.enabled t.recorder then begin
    let root = Obs.Recorder.next_id () in
    let child name start_ns dur_ns args =
      { Obs.Recorder.name;
        id = Obs.Recorder.next_id ();
        parent = root;
        start_ns;
        dur_ns;
        args }
    in
    let opt key =
      match reply_int reply key with
      | Some v -> [ (key, string_of_int v) ]
      | None -> []
    in
    Obs.Recorder.record t.recorder
      [ { Obs.Recorder.name = "request";
          id = root;
          parent = 0;
          start_ns = job.t0_ns;
          dur_ns = t_written - job.t0_ns;
          args =
            [ ("op", env.op); ("outcome", !outcome);
              ("worker", string_of_int w.wid);
              ("conn", string_of_int job.jconn.cid);
              ("id", Json.to_string env.id) ] };
        child "queue_wait" job.t0_ns (t_exec - job.t0_ns) [];
        child !span t_exec (t_done - t_exec)
          (opt "nodes" @ opt "table_hits");
        child "reply_write" t_done (t_written - t_done) [] ]
  end;
  slow_query_log t job ~outcome:!outcome
    ~wall:(Clock.now_s () -. job.t0)
    reply

(* Dump the flight recorder to the configured path on a crash or a
   fatal exit — the ring holds the requests leading up to the event,
   which is exactly the forensic window.  Best-effort: a dump failure
   is logged, never propagated into the crash path. *)
let dump_trace_on ~event t =
  match t.cfg.trace_dump_path with
  | Some path when Obs.Recorder.enabled t.recorder -> (
      match Obs.Recorder.dump t.recorder ~path with
      | () ->
          Logging.info t.cfg.logger
            ~fields:[ ("event", Json.String event) ]
            (Printf.sprintf "flight recorder dumped to %s" path)
      | exception e ->
          Logging.warn t.cfg.logger
            (Printf.sprintf "flight recorder dump to %s failed (%s)" path
               (Printexc.to_string e)))
  | _ -> ()

(* The crash path: a worker domain whose body raised answers its
   in-flight request with a structured error, hands its queue to the
   surviving workers (the jobs were already admitted; their clients
   are waiting), and exits the domain cleanly so the acceptor can
   join and respawn it.  Never raises — an exception escaping here
   would surface in [Domain.join] and take the daemon down, which is
   exactly what crash isolation exists to prevent. *)
let worker_crashed t w exn =
  try
    Telemetry.incr c_crashes;
    let nw = Array.length t.workers in
    Mutex.lock w.qm;
    let cur = w.current in
    w.current <- None;
    w.cur_cancel <- None;
    let orphans = ref [] in
    if nw > 1 then begin
      (* With a single worker the queue stays put for the respawn. *)
      while not (Queue.is_empty w.q) do
        orphans := Queue.pop w.q :: !orphans
      done;
      w.queued <- 0
    end;
    w.alive <- false;
    Mutex.unlock w.qm;
    Logging.error t.cfg.logger
      ~fields:[ ("worker", Json.Int w.wid) ]
      (Printf.sprintf "worker %d crashed: %s" w.wid (Printexc.to_string exn));
    dump_trace_on ~event:"worker_crash" t;
    (match cur with
    | None -> ()
    | Some job ->
        Atomic.incr t.errors;
        deliver t ~finish:true job.jconn job.seq
          (Wire.to_line
             (Wire.error ~code:"worker_crashed" ~id:job.env.id
                (Printf.sprintf "worker %d crashed handling this request: %s"
                   w.wid (Printexc.to_string exn)))));
    let targets =
      Array.of_list
        (List.filter
           (fun o ->
             o.wid <> w.wid
             &&
             (Mutex.lock o.qm;
              let a = o.alive in
              Mutex.unlock o.qm;
              a))
           (Array.to_list t.workers))
    in
    let requeue tgt job =
      Mutex.lock tgt.qm;
      tgt.queued <- tgt.queued + 1;
      Queue.push job tgt.q;
      Condition.signal tgt.qc;
      Mutex.unlock tgt.qm
    in
    List.iteri
      (fun i job ->
        if Array.length targets > 0 then
          requeue targets.(i mod Array.length targets) job
        else
          (* Everyone else is down too; park it back on our own queue
             for whichever respawn comes first. *)
          requeue w job)
      (List.rev !orphans)
  with e ->
    Logging.error t.cfg.logger
      ~fields:[ ("worker", Json.Int w.wid) ]
      (Printf.sprintf "worker %d crash handler itself failed: %s" w.wid
         (Printexc.to_string e))

let worker_loop t w =
  let rec next () =
    Mutex.lock w.qm;
    let rec await () =
      if not (Queue.is_empty w.q) then begin
        let job = Queue.pop w.q in
        w.queued <- w.queued - 1;
        w.current <- Some job;
        Some job
      end
      else if Atomic.get t.stop then None
      else begin
        Condition.wait w.qc w.qm;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock w.qm;
    match job with
    | Some job ->
        (* The chaos crash site sits OUTSIDE [process]'s own exception
           handling, so an injected fault here exercises the real
           crash path, not the per-request error reply.  The site is
           numbered by jobs started (not finished) so a respawned
           worker re-rolls instead of crash-looping on the same
           site. *)
        let n = w.jobs_done in
        w.jobs_done <- n + 1;
        Faults.point t.cfg.chaos
          ~site:(Printf.sprintf "serve:worker:%d:job%d" w.wid n);
        process t w job;
        Mutex.lock w.qm;
        w.current <- None;
        Mutex.unlock w.qm;
        next ()
    | None -> ()
  in
  try next () with e -> worker_crashed t w e

(* ------------------------------------------------------------------ *)
(* Inline ops (acceptor side)                                          *)
(* ------------------------------------------------------------------ *)

let latency_snapshot t =
  Mutex.lock t.latm;
  let n = min t.lat_n latency_ring in
  let xs = Array.sub t.lat 0 n in
  let total = t.lat_n in
  Mutex.unlock t.latm;
  (xs, total)

let stats_fields t =
  let xs, total = latency_snapshot t in
  let pct p =
    if Array.length xs = 0 then 0.0 else Stats.percentile xs p *. 1e6
  in
  let cs = Cache.stats t.cache in
  let th = ref 0 and tm = ref 0 and te = ref 0 and ts = ref 0 in
  let entries = ref 0 in
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      let st = w.pub_stats and e = w.pub_entries in
      Mutex.unlock w.qm;
      th := !th + st.Tx.hits;
      tm := !tm + st.Tx.misses;
      te := !te + st.Tx.evictions;
      ts := !ts + st.Tx.stores;
      entries := !entries + e)
    t.workers;
  let alive =
    Array.fold_left
      (fun acc w ->
        Mutex.lock w.qm;
        let a = w.alive in
        Mutex.unlock w.qm;
        if a then acc + 1 else acc)
      0 t.workers
  in
  [ ("protocol_version", Json.Int protocol_version);
    ("uptime_s", Json.Float (Clock.now_s () -. t.started));
    ("requests", Json.Int (Atomic.get t.requests));
    ("errors", Json.Int (Atomic.get t.errors));
    ("workers", Json.Int (Array.length t.workers));
    ("workers_alive", Json.Int alive);
    ( "latency_us",
      Json.Obj
        [ ("count", Json.Int total);
          ("p50", Json.Float (pct 50.0));
          ("p95", Json.Float (pct 95.0));
          ("p99", Json.Float (pct 99.0)) ] );
    ( "result_cache",
      Json.Obj
        [ ("hits", Json.Int cs.Cache.hits);
          ("misses", Json.Int cs.Cache.misses);
          ("evictions", Json.Int cs.Cache.evictions);
          ("entries", Json.Int cs.Cache.entries);
          ("capacity", Json.Int t.cfg.cache_capacity);
          ("tags", Json.Int (Cache.Tags.count t.tags)) ] );
    ( "table",
      Json.Obj
        [ ("segments", Json.Int (Array.length t.workers));
          ("entries", Json.Int !entries);
          ("hits", Json.Int !th);
          ("misses", Json.Int !tm);
          ("evictions", Json.Int !te);
          ("stores", Json.Int !ts) ] );
    ( "ops",
      (* Per-op latency summaries (merged across outcomes), quantiles
         from the cumulative telemetry buckets — the same numbers the
         /metrics histograms expose, here for in-band consumers like
         [ccmx top]. *)
      Json.Obj
        (List.map
           (fun (op, s) ->
             let q p = Telemetry.summary_quantile s p in
             ( op,
               Json.Obj
                 [ ("count", Json.Int s.Telemetry.count);
                   ("p50_us", Json.Float (q 50.0));
                   ("p95_us", Json.Float (q 95.0));
                   ("p99_us", Json.Float (q 99.0)) ] ))
           (Obs.op_summaries ())) );
    ( "queues",
      Json.List
        (Array.to_list
           (Array.map
              (fun w ->
                Mutex.lock w.qm;
                let queued = w.queued
                and busy = w.current <> None
                and a = w.alive in
                Mutex.unlock w.qm;
                Json.Obj
                  [ ("worker", Json.Int w.wid);
                    ("queued", Json.Int queued);
                    ("inflight", Json.Int (if busy then 1 else 0));
                    ("alive", Json.Bool a) ])
              t.workers)) );
    ( "counters",
      Json.Obj
        (List.map (fun (k, v) -> (k, Json.Int v)) (Telemetry.counters ())) )
  ]

(* ------------------------------------------------------------------ *)
(* Metrics exposition (acceptor side)                                  *)
(* ------------------------------------------------------------------ *)

(* The GET /metrics payload: server-direct series sampled at scrape
   time merged with the interned Telemetry snapshot.  Gauges reflect
   the instant of the GET; counters are process-cumulative, so a
   scraper sees the same totals the in-band stats op reports. *)
let metrics_body t =
  let now = Clock.now_s () in
  let cs = Cache.stats t.cache in
  let hit_ratio =
    let tot = cs.Cache.hits + cs.Cache.misses in
    if tot = 0 then 0.0 else float_of_int cs.Cache.hits /. float_of_int tot
  in
  let th = ref 0 and tm = ref 0 and te = ref 0 and ts = ref 0 in
  let entries = ref 0 in
  let alive = ref 0 in
  let worker_gauges = ref [] in
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      let queued = w.queued
      and busy = w.current <> None
      and a = w.alive
      and st = w.pub_stats
      and e = w.pub_entries in
      Mutex.unlock w.qm;
      if a then incr alive;
      th := !th + st.Tx.hits;
      tm := !tm + st.Tx.misses;
      te := !te + st.Tx.evictions;
      ts := !ts + st.Tx.stores;
      entries := !entries + e;
      let l = [ ("worker", string_of_int w.wid) ] in
      worker_gauges :=
        (Obs.labeled "serve.table_entries" l, float_of_int e)
        :: (Obs.labeled "serve.worker_alive" l, if a then 1.0 else 0.0)
        :: (Obs.labeled "serve.inflight" l, if busy then 1.0 else 0.0)
        :: (Obs.labeled "serve.queue_depth" l, float_of_int queued)
        :: !worker_gauges)
    t.workers;
  let counters =
    Telemetry.counters ()
    @ [ ("serve.requests", Atomic.get t.requests);
        ("serve.errors", Atomic.get t.errors);
        ("serve.cache_hits", cs.Cache.hits);
        ("serve.cache_misses", cs.Cache.misses);
        ("serve.cache_evictions", cs.Cache.evictions);
        ("serve.table_hits", !th);
        ("serve.table_misses", !tm);
        ("serve.table_evictions", !te);
        ("serve.table_stores", !ts) ]
  in
  let gauges =
    Telemetry.gauges ()
    @ [ ("serve.uptime_seconds", now -. t.started);
        ("serve.workers", float_of_int (Array.length t.workers));
        ("serve.workers_alive", float_of_int !alive);
        ("serve.cache_hit_ratio", hit_ratio);
        ("serve.cache_entries", float_of_int cs.Cache.entries);
        ("serve.cache_capacity", float_of_int t.cfg.cache_capacity);
        ("serve.cache_tags", float_of_int (Cache.Tags.count t.tags));
        ("serve.table_entries_all", float_of_int !entries);
        ("serve.snapshot_age_seconds", now -. t.last_snapshot) ]
    @ List.rev !worker_gauges
  in
  Obs.render_metrics ~counters ~gauges
    ~histograms:(Telemetry.histograms ()) ()

(* Readiness: every worker domain alive, no queue at the shed
   threshold, and — when periodic snapshots are armed — the last
   snapshot recent enough that warm state would survive a kill. *)
let healthz t =
  let nw = Array.length t.workers in
  let alive = ref 0 and maxq = ref 0 in
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      if w.alive then incr alive;
      if w.queued > !maxq then maxq := w.queued;
      Mutex.unlock w.qm)
    t.workers;
  let age = Clock.now_s () -. t.last_snapshot in
  let snapshot_ok =
    match t.cfg.snapshot_every_s with
    | Some s -> age < 3.0 *. s
    | None -> true
  in
  let ok = !alive = nw && !maxq < t.cfg.max_queue && snapshot_ok in
  ( ok,
    Json.to_string
      (Json.Obj
         [ ("ok", Json.Bool ok);
           ("workers", Json.Int nw);
           ("workers_alive", Json.Int !alive);
           ("max_queue_depth", Json.Int !maxq);
           ("queue_limit", Json.Int t.cfg.max_queue);
           ("snapshot_age_s", Json.Float age);
           ("snapshot_fresh", Json.Bool snapshot_ok) ])
    ^ "\n" )

(* ------------------------------------------------------------------ *)
(* Request admission                                                   *)
(* ------------------------------------------------------------------ *)

let dispatch t conn (env : Wire.envelope) t0 t0_ns =
  let cache_key = content_key env.req in
  let use_cache =
    match env.req with Wire.Exact_cc { use_cache; _ } -> use_cache | _ -> true
  in
  (* Effective compute deadline: the tighter of the request's own
     budget and the server-side default, absolute from parse time. *)
  let deadline =
    let of_ms ms = t0 +. (float_of_int ms /. 1000.0) in
    match (env.deadline_ms, t.cfg.request_timeout_s) with
    | None, None -> None
    | Some ms, None -> Some (of_ms ms)
    | None, Some s -> Some (t0 +. s)
    | Some ms, Some s -> Some (min (of_ms ms) (t0 +. s))
  in
  match
    match env.req with
    | Wire.Exact_cc _ ->
        Some (Cache.Tags.tag t.tags (Option.get cache_key))
    | _ -> None
  with
  | exception Failure msg ->
      Atomic.incr t.errors;
      let seq = alloc_seq conn in
      deliver t conn seq (Wire.to_line (Wire.error ~id:env.id msg))
  | tag ->
      let nw = Array.length t.workers in
      let w =
        match tag with
        | Some tg -> t.workers.(tg mod nw)
        | None -> t.workers.(Hashtbl.hash cache_key mod nw)
      in
      let seq = alloc_seq ~inflight:true conn in
      let job =
        { env; jconn = conn; seq; t0; t0_ns; deadline; tag; cache_key;
          use_cache }
      in
      Mutex.lock w.qm;
      if w.queued >= t.cfg.max_queue then begin
        Mutex.unlock w.qm;
        Atomic.incr t.errors;
        Telemetry.incr c_overloaded;
        deliver t ~finish:true conn seq
          (Wire.to_line
             (Wire.error ~code:"overloaded" ~id:env.id
                (Printf.sprintf
                   "server overloaded: worker %d queue is full (%d)" w.wid
                   t.cfg.max_queue)))
      end
      else begin
        w.queued <- w.queued + 1;
        Queue.push job w.q;
        Condition.signal w.qc;
        Mutex.unlock w.qm
      end

let handle_line t conn line =
  if String.trim line <> "" then begin
    Atomic.incr t.requests;
    let t0 = Clock.now_s () in
    let t0_ns = Clock.now_ns () in
    let inline ?(op = "invalid") ?(outcome = "ok") reply =
      let seq = alloc_seq conn in
      record_latency t (Clock.now_s () -. t0);
      Obs.observe_op ~op ~outcome
        (int_of_float ((Clock.now_s () -. t0) *. 1e6));
      deliver t conn seq (Wire.to_line reply)
    in
    match Wire.parse line with
    | Error (id, msg) ->
        Atomic.incr t.errors;
        inline ~outcome:"error" (Wire.error ~id msg)
    | Ok env -> (
        match env.req with
        | Wire.Ping -> inline ~op:env.op (Wire.ok ~id:env.id ~op:env.op [])
        | Wire.Stats ->
            inline ~op:env.op (Wire.ok ~id:env.id ~op:env.op (stats_fields t))
        | Wire.Dump_trace ->
            inline ~op:env.op
              (Wire.ok ~id:env.id ~op:env.op
                 [ ("enabled", Json.Bool (Obs.Recorder.enabled t.recorder));
                   ("trace", Obs.Recorder.to_chrome t.recorder) ])
        | Wire.Shutdown ->
            inline ~op:env.op (Wire.ok ~id:env.id ~op:env.op []);
            Logging.info t.cfg.logger
              ~fields:[ ("conn", Json.Int conn.cid) ]
              (Printf.sprintf "conn %d: shutdown requested" conn.cid);
            Atomic.set t.stop true
        (* Admission check: the wire accepts matrices up to
           [Wire.max_matrix_side] (64), but the engine only admits
           canonical boards up to [E.max_side] — without this check an
           oversize request costs a full worker round-trip before
           failing deep in the search.  [E.canonical_dims] is one
           duplicate-collapse pass, cheap enough for the accept
           path. *)
        | Wire.Exact_cc { matrix; _ }
          when (let r, c = E.canonical_dims matrix in
                r > E.max_side || c > E.max_side) ->
            let cr, cc = E.canonical_dims matrix in
            Atomic.incr t.errors;
            Telemetry.incr c_too_large;
            inline ~op:env.op ~outcome:"error"
              (Wire.error ~code:"too_large" ~id:env.id
                 ~fields:
                   [ ("canon_rows", Json.Int cr);
                     ("canon_cols", Json.Int cc);
                     ("limit", Json.Int E.max_side) ]
                 (Printf.sprintf
                    "matrix too large for exact_cc: canonical %dx%d exceeds \
                     %dx%d"
                    cr cc E.max_side E.max_side))
        | _ -> dispatch t conn env t0 t0_ns)
  end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let tag_of_table_key key = key lsr (2 * E.max_side)

let snapshot_doc t =
  Json.Obj
    [ ("format", Json.String snapshot_format);
      ("version", Json.Int snapshot_version);
      ("workers", Json.Int (Array.length t.workers));
      ("tags", Cache.Tags.to_json t.tags);
      ("cache", Cache.to_json t.cache);
      ( "segments",
        Json.List
          (Array.to_list
             (Array.map
                (* Txtable is not thread-safe: the segment is copied
                   under its table mutex, held by the owning worker
                   only while computing.  Segments snapshot one at a
                   time — fine for a cache, which needs no cross-
                   segment consistency point. *)
                (fun w ->
                  Mutex.lock w.tm;
                  let s = Tx.save w.table in
                  Mutex.unlock w.tm;
                  s)
                t.workers)) )
    ]

(* [?chaos_site] is set only on periodic snapshots, so a chaos run
   still writes its final (shutdown) snapshot and a warm restart can
   be asserted after a soak.  Any failure is logged and survived: the
   previous snapshot file is intact (writes are temp+rename) and the
   next interval retries. *)
let write_snapshot ?chaos_site t =
  match t.cfg.snapshot_path with
  | None -> ()
  | Some path -> (
      match
        Option.iter (fun site -> Faults.point t.cfg.chaos ~site) chaos_site;
        Json.to_file ~path (snapshot_doc t)
      with
      | () ->
          Telemetry.incr c_snapshots;
          t.last_snapshot <- Clock.now_s ();
          Logging.info t.cfg.logger
            (Printf.sprintf
               "snapshot written to %s (%d tags, %d cached results)" path
               (Cache.Tags.count t.tags)
               (Cache.stats t.cache).Cache.entries)
      | exception Faults.Injected site ->
          Telemetry.incr c_chaos_snapshot;
          Logging.warn t.cfg.logger
            (Printf.sprintf "chaos: snapshot skipped at %s" site)
      | exception e ->
          Logging.warn t.cfg.logger
            (Printf.sprintf "snapshot write to %s failed (%s)" path
               (Printexc.to_string e)))

let mk_table cfg = Tx.create ?budget_entries:cfg.table_budget ()

(* Load warm state, or start cold.  Everything is parsed and validated
   into fresh structures before any of it is adopted, so a snapshot
   rejected halfway cannot leave the daemon half-warm. *)
let load_warm_state cfg ~workers:nw =
  let fresh () =
    ( Cache.Tags.create (),
      Cache.create ~capacity:cfg.cache_capacity,
      Array.init nw (fun _ -> mk_table cfg) )
  in
  match cfg.snapshot_path with
  | None -> fresh ()
  | Some path when not (Sys.file_exists path) ->
      Logging.info cfg.logger
        (Printf.sprintf "no snapshot at %s, starting cold" path);
      fresh ()
  | Some path -> (
      match
        let doc = Json.of_file path in
        (match Json.member "format" doc with
        | Some (Json.String f) when f = snapshot_format -> ()
        | Some (Json.String other) ->
            failwith
              (Printf.sprintf "format %S is not a serve snapshot" other)
        | _ -> failwith "missing \"format\" marker");
        (match Json.member "version" doc with
        | Some (Json.Int v) when v = snapshot_version -> ()
        | Some (Json.Int v) ->
            failwith
              (Printf.sprintf
                 "unsupported snapshot version %d (this build reads %d)" v
                 snapshot_version)
        | _ -> failwith "missing or non-integer \"version\"");
        let tags =
          match Json.member "tags" doc with
          | Some j -> Cache.Tags.load j
          | None -> failwith "missing \"tags\""
        in
        let cache =
          match Json.member "cache" doc with
          | Some j -> Cache.load ~capacity:cfg.cache_capacity j
          | None -> failwith "missing \"cache\""
        in
        let tables = Array.init nw (fun _ -> mk_table cfg) in
        let moved = ref 0 in
        (match Json.member "segments" doc with
        | Some (Json.List segs) ->
            List.iter
              (fun seg ->
                let src = Tx.load seg in
                (* Redistribute by tag so warmth survives a change in
                   worker count: dispatch routes by the same formula. *)
                Tx.iter src (fun key v ->
                    Tx.set tables.(tag_of_table_key key mod nw) key v;
                    incr moved))
              segs
        | _ -> failwith "missing or non-list \"segments\"");
        Array.iter Tx.reset_stats tables;
        (tags, cache, tables, !moved)
      with
      | tags, cache, tables, moved ->
          Logging.info cfg.logger
            (Printf.sprintf
               "snapshot %s loaded: %d tags, %d cached results, %d table \
                entries"
               path (Cache.Tags.count tags)
               (Cache.stats cache).Cache.entries moved);
          (tags, cache, tables)
      | exception Failure msg ->
          Logging.warn cfg.logger
            (Printf.sprintf "snapshot %s rejected (%s), starting cold" path
               msg);
          fresh ()
      | exception e ->
          Logging.warn cfg.logger
            (Printf.sprintf "snapshot %s unreadable (%s), starting cold" path
               (Printexc.to_string e));
          fresh ())

(* ------------------------------------------------------------------ *)
(* Acceptor                                                            *)
(* ------------------------------------------------------------------ *)

let run ?(stop = Atomic.make false) (cfg : config) =
  Sigguard.ignore_sigpipe ();
  let nw = cfg.workers in
  let tags, cache, tables = load_warm_state cfg ~workers:nw in
  let workers =
    Array.init nw (fun wid ->
        { wid;
          table = tables.(wid);
          tm = Mutex.create ();
          q = Queue.create ();
          qm = Mutex.create ();
          qc = Condition.create ();
          queued = 0;
          current = None;
          cur_cancel = None;
          alive = true;
          jobs_done = 0;
          pub_stats = Tx.stats tables.(wid);
          pub_entries = Tx.length tables.(wid) })
  in
  let t =
    { cfg; stop; cache; tags; workers;
      latm = Mutex.create ();
      lat = Array.make latency_ring 0.0;
      lat_n = 0;
      requests = Atomic.make 0;
      errors = Atomic.make 0;
      started = Clock.now_s ();
      hist = Telemetry.histogram "serve.request_us";
      recorder = Obs.Recorder.create ~capacity:cfg.trace_ring;
      (* Boot counts as "fresh" so /healthz is green until the first
         periodic snapshot is actually due. *)
      last_snapshot = Clock.now_s () }
  in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen lfd 16
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  Logging.info cfg.logger
    (Printf.sprintf "listening on %s (%d worker domain(s), protocol v%d)"
       cfg.socket_path nw protocol_version);
  (* Observability listeners (GET /metrics, GET /healthz): tiny
     HTTP/1.0 exchanges answered inline from the same select loop, so
     a scrape can never race worker state and costs no extra domain. *)
  let metrics_lfds =
    let unix_l =
      match cfg.metrics_socket with
      | None -> []
      | Some path ->
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try
             Unix.bind fd (Unix.ADDR_UNIX path);
             Unix.listen fd 16
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          Logging.info cfg.logger
            (Printf.sprintf "metrics on %s (unix)" path);
          [ fd ]
    in
    let tcp_l =
      match cfg.metrics_port with
      | None -> []
      | Some port ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.setsockopt fd Unix.SO_REUSEADDR true;
             (* Loopback only: the exposition is diagnostics, not a
                public interface. *)
             Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
             Unix.listen fd 16
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          Logging.info cfg.logger
            (Printf.sprintf "metrics on 127.0.0.1:%d (tcp)" port);
          [ fd ]
    in
    unix_l @ tcp_l
  in
  let mconns : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 4 in
  let domains =
    Array.map (fun w -> Some (Domain.spawn (fun () -> worker_loop t w))) workers
  in
  (* Sliding-window respawn accounting, acceptor-only state. *)
  let respawn_times = Array.make nw [] in
  let fatal = ref None in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let rdbuf = Bytes.create 65536 in
  let accept_conn () =
    match Unix.accept lfd with
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      ->
        ()
    | fd, _ ->
        (* Nonblocking, so a client that stops reading stalls only its
           own bounded write deadline, never a domain. *)
        Unix.set_nonblock fd;
        let cid = !next_cid in
        incr next_cid;
        Hashtbl.replace conns fd
          { fd; cid;
            rbuf = Buffer.create 256;
            cm = Mutex.create ();
            next_seq = 0;
            next_write = 0;
            pending = Hashtbl.create 8;
            write_ok = true;
            eof = false;
            discarding = false;
            inflight = 0 }
  in
  let shed_oversized conn =
    Atomic.incr t.errors;
    Telemetry.incr c_oversized;
    let seq = alloc_seq conn in
    deliver t conn seq
      (Wire.to_line
         (Wire.error ~code:"line_too_long" ~id:Json.Null
            (Printf.sprintf "request line exceeds %d bytes"
               cfg.max_line_bytes)))
  in
  let drain_lines conn =
    let s = Buffer.contents conn.rbuf in
    let n = String.length s in
    let start = ref 0 in
    (try
       while true do
         let i = String.index_from s !start '\n' in
         let len = i - !start in
         (* a complete line can still breach the bound when it arrived
            within one read chunk *)
         if len > cfg.max_line_bytes then begin
           start := i + 1;
           shed_oversized conn
         end
         else begin
           let line = String.sub s !start len in
           start := i + 1;
           handle_line t conn line
         end
       done
     with Not_found -> ());
    Buffer.clear conn.rbuf;
    Buffer.add_substring conn.rbuf s !start (n - !start)
  in
  (* A line that outgrows [max_line_bytes] gets one structured error,
     then the connection switches to discard mode: bytes are dropped
     until the newline that ends the oversized line, and parsing
     resumes with the next request.  The client keeps its connection —
     and its reply ordering — instead of being disconnected. *)
  let rec consume_chunk conn off n =
    if off < n then
      if conn.discarding then
        match Bytes.index_from_opt rdbuf off '\n' with
        | Some i when i < n ->
            conn.discarding <- false;
            consume_chunk conn (i + 1) n
        | _ -> ()  (* the whole rest of the chunk is oversized-line body *)
      else begin
        Buffer.add_subbytes conn.rbuf rdbuf off (n - off);
        drain_lines conn;
        if Buffer.length conn.rbuf > cfg.max_line_bytes then begin
          (* The leftover is a partial (newline-free) line, so every
             buffered byte belongs to the oversized request. *)
          shed_oversized conn;
          Buffer.clear conn.rbuf;
          conn.discarding <- true
        end
      end
  in
  let accept_mconn mlfd =
    match Unix.accept mlfd with
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      ->
        ()
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace mconns fd (Buffer.create 64)
  in
  let close_mconn fd =
    Hashtbl.remove mconns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (* One request head line, one response, close — the whole exchange
     bounded by the same write deadline as reply writes. *)
  let metrics_respond fd head =
    let body, status, ctype =
      match Obs.http_path head with
      | Some "/metrics" ->
          (metrics_body t, 200, "text/plain; version=0.0.4")
      | Some "/healthz" ->
          let ok, body = healthz t in
          (body, (if ok then 200 else 503), "application/json")
      | _ -> ("not found\n", 404, "text/plain")
    in
    let resp = Obs.http_response ~status ~content_type:ctype body in
    let b = Bytes.of_string resp in
    let deadline = Clock.now_s () +. cfg.write_timeout_s in
    (try write_all fd b 0 (Bytes.length b) ~deadline
     with e when is_write_failure e -> ());
    close_mconn fd
  in
  let read_mconn fd buf =
    match Unix.read fd rdbuf 0 (Bytes.length rdbuf) with
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_mconn fd
    | 0 -> close_mconn fd
    | n ->
        Buffer.add_subbytes buf rdbuf 0 n;
        let s = Buffer.contents buf in
        (match String.index_opt s '\n' with
        | Some i -> metrics_respond fd (String.sub s 0 i)
        | None ->
            (* No plausible request head is this long. *)
            if Buffer.length buf > 4096 then close_mconn fd)
  in
  let read_conn conn =
    match Unix.read conn.fd rdbuf 0 (Bytes.length rdbuf) with
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        conn.eof <- true
    | 0 -> conn.eof <- true
    | n -> consume_chunk conn 0 n
  in
  let reap () =
    let dead =
      Hashtbl.fold
        (fun fd c acc ->
          Mutex.lock c.cm;
          let idle = c.inflight = 0 in
          let gone = (c.eof || not c.write_ok) && idle in
          Mutex.unlock c.cm;
          if gone then (fd, c) :: acc else acc)
        conns []
    in
    List.iter
      (fun (fd, _) ->
        Hashtbl.remove conns fd;
        try Unix.close fd with Unix.Unix_error _ -> ())
      dead
  in
  (* Detect worker domains whose body exited while the daemon is
     still running: only the crash path does that (normal exits happen
     after stop).  Join the dead domain, then respawn onto the same
     worker record — same wid, same table segment, same queue — unless
     this worker has exhausted its respawn budget for the sliding
     window, in which case the whole daemon shuts down and [run]
     raises [Fatal] after the drain. *)
  let check_workers () =
    Array.iteri
      (fun i w ->
        let dead =
          Mutex.lock w.qm;
          let d = not w.alive in
          Mutex.unlock w.qm;
          d
        in
        if dead && !fatal = None then begin
          (match domains.(i) with
          | Some d ->
              Domain.join d;
              domains.(i) <- None
          | None -> ());
          let now = Clock.now_s () in
          let recent =
            List.filter
              (fun ts -> now -. ts < cfg.respawn_window_s)
              respawn_times.(i)
          in
          if List.length recent >= cfg.respawn_budget then begin
            fatal :=
              Some
                (Printf.sprintf
                   "worker %d exhausted its respawn budget (%d respawns \
                    within %.0fs)"
                   w.wid cfg.respawn_budget cfg.respawn_window_s);
            Logging.error cfg.logger
              ~fields:[ ("worker", Json.Int w.wid) ]
              (Option.get !fatal);
            (* Its queue will never be served; answer, don't strand. *)
            let stranded = ref [] in
            Mutex.lock w.qm;
            while not (Queue.is_empty w.q) do
              stranded := Queue.pop w.q :: !stranded
            done;
            w.queued <- 0;
            Mutex.unlock w.qm;
            List.iter
              (fun job ->
                Atomic.incr t.errors;
                deliver t ~finish:true job.jconn job.seq
                  (Wire.to_line
                     (Wire.error ~code:"worker_crashed" ~id:job.env.Wire.id
                        "worker exhausted its respawn budget")))
              (List.rev !stranded);
            Atomic.set t.stop true
          end
          else begin
            respawn_times.(i) <- now :: recent;
            Mutex.lock w.qm;
            w.alive <- true;
            Mutex.unlock w.qm;
            domains.(i) <- Some (Domain.spawn (fun () -> worker_loop t w));
            Telemetry.incr c_respawns;
            Logging.warn cfg.logger
              ~fields:[ ("worker", Json.Int w.wid) ]
              (Printf.sprintf "worker %d respawned (%d/%d in window)" w.wid
                 (List.length recent + 1)
                 cfg.respawn_budget)
          end
        end)
      workers
  in
  let snap_count = ref 0 in
  let next_snapshot =
    ref
      (match cfg.snapshot_every_s with
      | Some s -> Clock.now_s () +. s
      | None -> infinity)
  in
  let periodic_snapshot () =
    match cfg.snapshot_every_s with
    | Some s when Clock.now_s () >= !next_snapshot ->
        let n = !snap_count in
        incr snap_count;
        write_snapshot ~chaos_site:(Printf.sprintf "serve:snapshot:%d" n) t;
        next_snapshot := Clock.now_s () +. s
    | _ -> ()
  in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let fds =
        (lfd :: metrics_lfds)
        @ Hashtbl.fold (fun fd _ acc -> fd :: acc) mconns []
        @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
      in
      (match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = lfd then accept_conn ()
              else if List.mem fd metrics_lfds then accept_mconn fd
              else
                match Hashtbl.find_opt conns fd with
                | Some conn -> read_conn conn
                | None -> (
                    match Hashtbl.find_opt mconns fd with
                    | Some buf -> read_mconn fd buf
                    | None -> ()))
            ready);
      check_workers ();
      reap ();
      periodic_snapshot ();
      loop ()
    end
  in
  loop ();
  (* Graceful drain: no new connections or reads; let workers finish
     what is queued, then persist the warm state. *)
  Logging.info cfg.logger "stop requested, draining";
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    metrics_lfds;
  Option.iter
    (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
    cfg.metrics_socket;
  Hashtbl.iter
    (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    mconns;
  let all_idle () =
    Array.for_all
      (fun w ->
        Mutex.lock w.qm;
        let e = w.queued = 0 in
        Mutex.unlock w.qm;
        e)
      workers
    && Hashtbl.fold
         (fun _ c acc ->
           Mutex.lock c.cm;
           let i = c.inflight in
           Mutex.unlock c.cm;
           acc && i = 0)
         conns true
  in
  let deadline = Clock.now_s () +. cfg.drain_timeout_s in
  while not (all_idle ()) && Clock.now_s () < deadline do
    Clock.sleepf 0.02
  done;
  (* Past the drain deadline a search may still be running; fire its
     cancel token so the worker raises out of the search, answers
     timed_out, and its domain becomes joinable.  (Every exact-CC job
     carries a token precisely for this.) *)
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      (match w.cur_cancel with
      | Some tok -> Pool.Token.cancel tok
      | None -> ());
      Mutex.unlock w.qm)
    workers;
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      Condition.broadcast w.qc;
      Mutex.unlock w.qm)
    workers;
  Array.iter (function Some d -> Domain.join d | None -> ()) domains;
  write_snapshot t;
  Hashtbl.iter
    (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    conns;
  Logging.info cfg.logger
    (Printf.sprintf "stopped after %d request(s)" (Atomic.get t.requests));
  match !fatal with
  | Some msg ->
      dump_trace_on ~event:"fatal" t;
      raise (Fatal msg)
  | None -> ()
