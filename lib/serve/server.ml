(* The serve daemon.  Concurrency layout:

     acceptor (caller's domain)
       select loop: accept / read lines / parse
       ping, stats, shutdown answered inline
       compute ops -> worker queues (affinity: table tag mod workers)
     worker domains (one Txtable segment each)
       pop job, result-cache lookup, else compute, deliver reply

   Locks, leaf-only and never nested with each other:
     conn.cm     sequence numbers, pending replies, inflight count
     worker.qm   job queue + published table stats
     latm        latency ring
     (Cache and Tags carry their own internal mutexes.)

   Replies are written by whichever worker finishes the job, but
   strictly in per-connection request order: a finished reply parks in
   [conn.pending] until every lower sequence number has been written.
   A failed write (client gone: EPIPE/ECONNRESET) marks the connection
   dead and drops its parked replies — one lost client never unsettles
   the daemon or other connections. *)

module Json = Commx_util.Json
module Bm = Commx_util.Bitmat
module Tx = Commx_util.Txtable
module Clock = Commx_util.Clock
module Telemetry = Commx_util.Telemetry
module Stats = Commx_util.Stats
module Sigguard = Commx_util.Sigguard
module Prng = Commx_util.Prng
module Zm = Commx_linalg.Zmatrix
module B = Commx_bigint.Bigint
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module Bounds = Commx_core.Bounds
module E = Commx_comm.Exact_cc
module Protocol = Commx_comm.Protocol
module Truth_matrix = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint

type config = {
  socket_path : string;
  workers : int;
  snapshot_path : string option;
  cache_capacity : int;
  table_budget : int option;
  max_queue : int;
  drain_timeout_s : float;
  log : level:string -> string -> unit;
}

let protocol_version = 1
let snapshot_format = "ccmx-serve-snapshot"
let snapshot_version = 1

let default_log ~level msg =
  let line =
    Json.to_string
      (Json.Obj
         [ ("ts", Json.Float (Clock.now_s ()));
           ("level", Json.String level);
           ("msg", Json.String msg) ])
  in
  Printf.eprintf "%s\n%!" line

let config ~socket_path ?(workers = 2) ?snapshot_path ?(cache_capacity = 1024)
    ?table_budget ?(max_queue = 64) ?(drain_timeout_s = 30.0)
    ?(log = default_log) () =
  if workers < 1 then invalid_arg "Server.config: workers < 1";
  if cache_capacity < 1 then invalid_arg "Server.config: cache_capacity < 1";
  if max_queue < 1 then invalid_arg "Server.config: max_queue < 1";
  (match table_budget with
  | Some b when b < 1 -> invalid_arg "Server.config: table_budget < 1"
  | _ -> ());
  { socket_path; workers; snapshot_path; cache_capacity; table_budget;
    max_queue; drain_timeout_s; log }

(* ------------------------------------------------------------------ *)
(* Connections and jobs                                                *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  rbuf : Buffer.t;
  cm : Mutex.t;
  mutable next_seq : int;  (* next sequence number to hand out *)
  mutable next_write : int;  (* next sequence number to put on the wire *)
  pending : (int, string) Hashtbl.t;  (* finished out-of-order replies *)
  mutable write_ok : bool;
  mutable eof : bool;
  mutable inflight : int;
}

type job = {
  env : Wire.envelope;
  jconn : conn;
  seq : int;
  t0 : float;
  tag : int option;  (* exact-CC table tag *)
  cache_key : string option;
  use_cache : bool;
}

type worker = {
  wid : int;
  table : Tx.t;
  q : job Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  mutable queued : int;
  mutable pub_stats : Tx.stats;  (* published for the stats op *)
  mutable pub_entries : int;
}

let latency_ring = 4096

type t = {
  cfg : config;
  stop : bool Atomic.t;
  cache : Cache.t;
  tags : Cache.Tags.t;
  workers : worker array;
  latm : Mutex.t;
  lat : float array;  (* seconds, ring buffer *)
  mutable lat_n : int;  (* total observations ever *)
  requests : int Atomic.t;
  errors : int Atomic.t;
  started : float;
  hist : Telemetry.histogram;
}

(* ------------------------------------------------------------------ *)
(* Socket writes                                                       *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let is_write_failure = function
  | Unix.Unix_error _ -> true
  | e -> Sigguard.is_broken_pipe e

(* Park the reply under its sequence number, then put every
   consecutive ready reply on the wire.  [finish] marks the job as no
   longer in flight (same critical section, so the reaper never sees a
   reply-less idle connection). *)
let deliver t ?(finish = false) conn seq line =
  Mutex.lock conn.cm;
  if finish then conn.inflight <- conn.inflight - 1;
  if conn.write_ok then begin
    Hashtbl.replace conn.pending seq line;
    try
      let rec flush () =
        match Hashtbl.find_opt conn.pending conn.next_write with
        | Some s ->
            Hashtbl.remove conn.pending conn.next_write;
            let b = Bytes.of_string s in
            write_all conn.fd b 0 (Bytes.length b);
            conn.next_write <- conn.next_write + 1;
            flush ()
        | None -> ()
      in
      flush ()
    with e when is_write_failure e ->
      conn.write_ok <- false;
      Hashtbl.reset conn.pending;
      t.cfg.log ~level:"info"
        (Printf.sprintf "conn %d: client gone (%s), dropping its replies"
           conn.cid (Printexc.to_string e))
  end;
  Mutex.unlock conn.cm

let alloc_seq ?(inflight = false) conn =
  Mutex.lock conn.cm;
  let s = conn.next_seq in
  conn.next_seq <- s + 1;
  if inflight then conn.inflight <- conn.inflight + 1;
  Mutex.unlock conn.cm;
  s

let record_latency t dt =
  Mutex.lock t.latm;
  t.lat.(t.lat_n mod latency_ring) <- dt;
  t.lat_n <- t.lat_n + 1;
  Mutex.unlock t.latm;
  Telemetry.observe t.hist (int_of_float (dt *. 1e6))

(* ------------------------------------------------------------------ *)
(* Content keys                                                        *)
(* ------------------------------------------------------------------ *)

let bitmat_key m =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (Printf.sprintf "%dx%d:" (Bm.rows m) (Bm.cols m));
  for i = 0 to Bm.rows m - 1 do
    if i > 0 then Buffer.add_char buf '.';
    for j = 0 to Bm.cols m - 1 do
      Buffer.add_char buf (if Bm.get m i j then '1' else '0')
    done
  done;
  Buffer.contents buf

let zmatrix_key m =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (Printf.sprintf "%dx%d:" (Zm.rows m) (Zm.cols m));
  for i = 0 to Zm.rows m - 1 do
    for j = 0 to Zm.cols m - 1 do
      Buffer.add_string buf (B.to_string (Zm.get m i j));
      Buffer.add_char buf ','
    done
  done;
  Buffer.contents buf

let content_key (req : Wire.request) =
  match req with
  | Wire.Ping | Wire.Stats | Wire.Shutdown -> None
  | Wire.Exact_cc { matrix; _ } ->
      (* Canonical, not literal: structurally equal boards alias. *)
      Some ("exact_cc:" ^ E.canonical_key matrix)
  | Wire.Singular { matrix } -> Some ("singular:" ^ zmatrix_key matrix)
  | Wire.Lemma32 { n; k; seed } ->
      Some (Printf.sprintf "lemma32:%d:%d:%d" n k seed)
  | Wire.Lower_bounds { matrix } -> Some ("lower_bounds:" ^ bitmat_key matrix)
  | Wire.Protocol_run { proto; n; k; seed; epsilon } ->
      Some (Printf.sprintf "protocol:%s:%d:%d:%d:%h" proto n k seed epsilon)

(* ------------------------------------------------------------------ *)
(* Compute handlers (worker side)                                      *)
(* ------------------------------------------------------------------ *)

let require_params ~n ~k =
  if not (Params.is_valid ~n ~k) then
    failwith (Printf.sprintf "invalid parameters n=%d k=%d" n k);
  Params.make ~n ~k

(* Each handler returns (cacheable result fields, per-request fields).
   Only the former go into the result cache; a cache hit re-serves them
   with fresh per-request fields. *)
let exec w (env : Wire.envelope) ~tag =
  match env.req with
  | Wire.Ping | Wire.Stats | Wire.Shutdown ->
      (* Answered inline by the acceptor; never queued. *)
      assert false
  | Wire.Exact_cc { matrix; _ } ->
      let key_tag = Option.value tag ~default:0 in
      let v, st = E.search ~table:w.table ~key_tag matrix in
      ( [ ("value", Json.Int v);
          ("canon_rows", Json.Int st.E.canon_rows);
          ("canon_cols", Json.Int st.E.canon_cols);
          ("root_lower", Json.Int st.E.root_lower);
          ("root_upper", Json.Int st.E.root_upper) ],
        [ ("nodes", Json.Int st.E.nodes);
          ("table_hits", Json.Int st.E.table_hits);
          ("table_misses", Json.Int st.E.table_misses) ] )
  | Wire.Singular { matrix } ->
      if not (Zm.is_square matrix) then failwith "matrix is not square";
      let d = Zm.det matrix in
      ( [ ("dimension", Json.Int (Zm.rows matrix));
          ("rank", Json.Int (Zm.rank matrix));
          ("det", Json.String (B.to_string d));
          ("singular", Json.Bool (B.is_zero d)) ],
        [] )
  | Wire.Lemma32 { n; k; seed } ->
      let p = require_params ~n ~k in
      let g = Prng.create seed in
      let f = H.random_free g p in
      let crit = L32.criterion p f in
      let direct = L32.is_singular_direct (H.build_m p f) in
      ( [ ("criterion", Json.Bool crit);
          ("direct", Json.Bool direct);
          ("agrees", Json.Bool (crit = direct)) ],
        [] )
  | Wire.Lower_bounds { matrix } ->
      let nr = Bm.rows matrix and nc = Bm.cols matrix in
      let tm =
        Truth_matrix.build (List.init nr Fun.id) (List.init nc Fun.id)
          (fun i j -> Bm.get matrix i j)
      in
      (* The exact rectangle-cover bound enumerates covers; keep it to
         boards small enough that it cannot stall a worker. *)
      let r = Rank_bound.analyze tm ~exact_rect:(nr * nc <= 64) in
      ( [ ("gf2_rank", Json.Int r.Rank_bound.gf2);
          ("rational_rank", Json.Int r.Rank_bound.rational);
          ("log_rank_bits", Json.Float r.Rank_bound.log_rank);
          ("fooling_set", Json.Int r.Rank_bound.fooling);
          ("fooling_bits", Json.Float r.Rank_bound.fooling_bits);
          ("cover_bits", Json.Float r.Rank_bound.cover_bits);
          ("trivial_upper_bits", Json.Float r.Rank_bound.trivial_upper) ],
        [] )
  | Wire.Protocol_run { proto; n; k; seed; epsilon } ->
      let p = require_params ~n ~k in
      let g = Prng.create seed in
      let m = H.build_m p (H.random_free g p) in
      let alice, bob = Halves.split_pi0 m in
      let truth = Zm.is_singular m in
      let got, bits =
        match proto with
        | "trivial" -> Protocol.execute (Trivial.singularity ~k) alice bob
        | "fingerprint" ->
            let rp = Fingerprint.singularity ~n ~k ~epsilon in
            Protocol.execute
              (rp.Commx_comm.Randomized.run_seeded ~seed:(seed + 1))
              alice bob
        | other -> failwith (Printf.sprintf "unknown protocol %S" other)
      in
      ( [ ("protocol", Json.String proto);
          ("answer", Json.Bool got);
          ("truth", Json.Bool truth);
          ("agrees", Json.Bool (got = truth));
          ("bits", Json.Int bits);
          ("trivial_upper_bits", Json.Int (Bounds.trivial_upper_bits ~n ~k)) ],
        [] )

let wall_us_field t0 =
  ("wall_us", Json.Int (int_of_float ((Clock.now_s () -. t0) *. 1e6)))

let process t w job =
  let env = job.env in
  let cached =
    if job.use_cache then Option.bind job.cache_key (Cache.find t.cache)
    else None
  in
  let reply =
    match cached with
    | Some (Json.Obj core) ->
        (* The result-cache hit IS the warm-cache hit: no search runs,
           so no nodes expand and the per-request table counters report
           the one (result-cache) hit. *)
        let extra =
          match env.req with
          | Wire.Exact_cc _ ->
              [ ("nodes", Json.Int 0); ("table_hits", Json.Int 1);
                ("table_misses", Json.Int 0) ]
          | _ -> []
        in
        Wire.ok ~id:env.id ~op:env.op
          (core @ extra
          @ [ ("cache", Json.String "hit"); wall_us_field job.t0 ])
    | Some _ | None -> (
        match exec w env ~tag:job.tag with
        | core, extra ->
            Option.iter
              (fun key -> Cache.add t.cache key (Json.Obj core))
              job.cache_key;
            let label = if job.use_cache then "miss" else "bypass" in
            Wire.ok ~id:env.id ~op:env.op
              (core @ extra
              @ [ ("cache", Json.String label); wall_us_field job.t0 ])
        | exception e ->
            Atomic.incr t.errors;
            Wire.error ~id:env.id (Printexc.to_string e))
  in
  (* Latency and table stats are published BEFORE the reply leaves:
     a client that sees its reply and immediately asks for `stats`
     must find this request already counted. *)
  record_latency t (Clock.now_s () -. job.t0);
  let st = Tx.stats w.table and entries = Tx.length w.table in
  Mutex.lock w.qm;
  w.pub_stats <- st;
  w.pub_entries <- entries;
  Mutex.unlock w.qm;
  deliver t ~finish:true job.jconn job.seq (Wire.to_line reply)

let worker_loop t w =
  let rec next () =
    Mutex.lock w.qm;
    let rec await () =
      if not (Queue.is_empty w.q) then begin
        let job = Queue.pop w.q in
        w.queued <- w.queued - 1;
        Some job
      end
      else if Atomic.get t.stop then None
      else begin
        Condition.wait w.qc w.qm;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock w.qm;
    match job with
    | Some job ->
        process t w job;
        next ()
    | None -> ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Inline ops (acceptor side)                                          *)
(* ------------------------------------------------------------------ *)

let latency_snapshot t =
  Mutex.lock t.latm;
  let n = min t.lat_n latency_ring in
  let xs = Array.sub t.lat 0 n in
  let total = t.lat_n in
  Mutex.unlock t.latm;
  (xs, total)

let stats_fields t =
  let xs, total = latency_snapshot t in
  let pct p =
    if Array.length xs = 0 then 0.0 else Stats.percentile xs p *. 1e6
  in
  let cs = Cache.stats t.cache in
  let th = ref 0 and tm = ref 0 and te = ref 0 and ts = ref 0 in
  let entries = ref 0 in
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      let st = w.pub_stats and e = w.pub_entries in
      Mutex.unlock w.qm;
      th := !th + st.Tx.hits;
      tm := !tm + st.Tx.misses;
      te := !te + st.Tx.evictions;
      ts := !ts + st.Tx.stores;
      entries := !entries + e)
    t.workers;
  [ ("protocol_version", Json.Int protocol_version);
    ("uptime_s", Json.Float (Clock.now_s () -. t.started));
    ("requests", Json.Int (Atomic.get t.requests));
    ("errors", Json.Int (Atomic.get t.errors));
    ("workers", Json.Int (Array.length t.workers));
    ( "latency_us",
      Json.Obj
        [ ("count", Json.Int total);
          ("p50", Json.Float (pct 50.0));
          ("p95", Json.Float (pct 95.0));
          ("p99", Json.Float (pct 99.0)) ] );
    ( "result_cache",
      Json.Obj
        [ ("hits", Json.Int cs.Cache.hits);
          ("misses", Json.Int cs.Cache.misses);
          ("evictions", Json.Int cs.Cache.evictions);
          ("entries", Json.Int cs.Cache.entries);
          ("capacity", Json.Int t.cfg.cache_capacity);
          ("tags", Json.Int (Cache.Tags.count t.tags)) ] );
    ( "table",
      Json.Obj
        [ ("segments", Json.Int (Array.length t.workers));
          ("entries", Json.Int !entries);
          ("hits", Json.Int !th);
          ("misses", Json.Int !tm);
          ("evictions", Json.Int !te);
          ("stores", Json.Int !ts) ] );
    ( "counters",
      Json.Obj
        (List.map (fun (k, v) -> (k, Json.Int v)) (Telemetry.counters ())) )
  ]

(* ------------------------------------------------------------------ *)
(* Request admission                                                   *)
(* ------------------------------------------------------------------ *)

let dispatch t conn (env : Wire.envelope) t0 =
  let cache_key = content_key env.req in
  let use_cache =
    match env.req with Wire.Exact_cc { use_cache; _ } -> use_cache | _ -> true
  in
  match
    match env.req with
    | Wire.Exact_cc _ ->
        Some (Cache.Tags.tag t.tags (Option.get cache_key))
    | _ -> None
  with
  | exception Failure msg ->
      Atomic.incr t.errors;
      let seq = alloc_seq conn in
      deliver t conn seq (Wire.to_line (Wire.error ~id:env.id msg))
  | tag ->
      let nw = Array.length t.workers in
      let w =
        match tag with
        | Some tg -> t.workers.(tg mod nw)
        | None -> t.workers.(Hashtbl.hash cache_key mod nw)
      in
      let seq = alloc_seq ~inflight:true conn in
      let job = { env; jconn = conn; seq; t0; tag; cache_key; use_cache } in
      Mutex.lock w.qm;
      if w.queued >= t.cfg.max_queue then begin
        Mutex.unlock w.qm;
        Atomic.incr t.errors;
        deliver t ~finish:true conn seq
          (Wire.to_line
             (Wire.error ~id:env.id
                (Printf.sprintf
                   "server overloaded: worker %d queue is full (%d)" w.wid
                   t.cfg.max_queue)))
      end
      else begin
        w.queued <- w.queued + 1;
        Queue.push job w.q;
        Condition.signal w.qc;
        Mutex.unlock w.qm
      end

let handle_line t conn line =
  if String.trim line <> "" then begin
    Atomic.incr t.requests;
    let t0 = Clock.now_s () in
    let inline reply =
      let seq = alloc_seq conn in
      record_latency t (Clock.now_s () -. t0);
      deliver t conn seq (Wire.to_line reply)
    in
    match Wire.parse line with
    | Error (id, msg) ->
        Atomic.incr t.errors;
        inline (Wire.error ~id msg)
    | Ok env -> (
        match env.req with
        | Wire.Ping -> inline (Wire.ok ~id:env.id ~op:env.op [])
        | Wire.Stats -> inline (Wire.ok ~id:env.id ~op:env.op (stats_fields t))
        | Wire.Shutdown ->
            inline (Wire.ok ~id:env.id ~op:env.op []);
            t.cfg.log ~level:"info"
              (Printf.sprintf "conn %d: shutdown requested" conn.cid);
            Atomic.set t.stop true
        | _ -> dispatch t conn env t0)
  end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let tag_of_table_key key = key lsr (2 * E.max_side)

let snapshot_doc t =
  Json.Obj
    [ ("format", Json.String snapshot_format);
      ("version", Json.Int snapshot_version);
      ("workers", Json.Int (Array.length t.workers));
      ("tags", Cache.Tags.to_json t.tags);
      ("cache", Cache.to_json t.cache);
      ( "segments",
        Json.List
          (Array.to_list (Array.map (fun w -> Tx.save w.table) t.workers)) )
    ]

let write_snapshot t =
  match t.cfg.snapshot_path with
  | None -> ()
  | Some path ->
      Json.to_file ~path (snapshot_doc t);
      t.cfg.log ~level:"info"
        (Printf.sprintf "snapshot written to %s (%d tags, %d cached results)"
           path
           (Cache.Tags.count t.tags)
           (Cache.stats t.cache).Cache.entries)

let mk_table cfg = Tx.create ?budget_entries:cfg.table_budget ()

(* Load warm state, or start cold.  Everything is parsed and validated
   into fresh structures before any of it is adopted, so a snapshot
   rejected halfway cannot leave the daemon half-warm. *)
let load_warm_state cfg ~workers:nw =
  let fresh () =
    ( Cache.Tags.create (),
      Cache.create ~capacity:cfg.cache_capacity,
      Array.init nw (fun _ -> mk_table cfg) )
  in
  match cfg.snapshot_path with
  | None -> fresh ()
  | Some path when not (Sys.file_exists path) ->
      cfg.log ~level:"info"
        (Printf.sprintf "no snapshot at %s, starting cold" path);
      fresh ()
  | Some path -> (
      match
        let doc = Json.of_file path in
        (match Json.member "format" doc with
        | Some (Json.String f) when f = snapshot_format -> ()
        | Some (Json.String other) ->
            failwith
              (Printf.sprintf "format %S is not a serve snapshot" other)
        | _ -> failwith "missing \"format\" marker");
        (match Json.member "version" doc with
        | Some (Json.Int v) when v = snapshot_version -> ()
        | Some (Json.Int v) ->
            failwith
              (Printf.sprintf
                 "unsupported snapshot version %d (this build reads %d)" v
                 snapshot_version)
        | _ -> failwith "missing or non-integer \"version\"");
        let tags =
          match Json.member "tags" doc with
          | Some j -> Cache.Tags.load j
          | None -> failwith "missing \"tags\""
        in
        let cache =
          match Json.member "cache" doc with
          | Some j -> Cache.load ~capacity:cfg.cache_capacity j
          | None -> failwith "missing \"cache\""
        in
        let tables = Array.init nw (fun _ -> mk_table cfg) in
        let moved = ref 0 in
        (match Json.member "segments" doc with
        | Some (Json.List segs) ->
            List.iter
              (fun seg ->
                let src = Tx.load seg in
                (* Redistribute by tag so warmth survives a change in
                   worker count: dispatch routes by the same formula. *)
                Tx.iter src (fun key v ->
                    Tx.set tables.(tag_of_table_key key mod nw) key v;
                    incr moved))
              segs
        | _ -> failwith "missing or non-list \"segments\"");
        Array.iter Tx.reset_stats tables;
        (tags, cache, tables, !moved)
      with
      | tags, cache, tables, moved ->
          cfg.log ~level:"info"
            (Printf.sprintf
               "snapshot %s loaded: %d tags, %d cached results, %d table \
                entries"
               path (Cache.Tags.count tags)
               (Cache.stats cache).Cache.entries moved);
          (tags, cache, tables)
      | exception Failure msg ->
          cfg.log ~level:"warn"
            (Printf.sprintf "snapshot %s rejected (%s), starting cold" path
               msg);
          fresh ()
      | exception e ->
          cfg.log ~level:"warn"
            (Printf.sprintf "snapshot %s unreadable (%s), starting cold" path
               (Printexc.to_string e));
          fresh ())

(* ------------------------------------------------------------------ *)
(* Acceptor                                                            *)
(* ------------------------------------------------------------------ *)

let max_request_buffer = 1 lsl 22

let run ?(stop = Atomic.make false) (cfg : config) =
  Sigguard.ignore_sigpipe ();
  let nw = cfg.workers in
  let tags, cache, tables = load_warm_state cfg ~workers:nw in
  let workers =
    Array.init nw (fun wid ->
        { wid;
          table = tables.(wid);
          q = Queue.create ();
          qm = Mutex.create ();
          qc = Condition.create ();
          queued = 0;
          pub_stats = Tx.stats tables.(wid);
          pub_entries = Tx.length tables.(wid) })
  in
  let t =
    { cfg; stop; cache; tags; workers;
      latm = Mutex.create ();
      lat = Array.make latency_ring 0.0;
      lat_n = 0;
      requests = Atomic.make 0;
      errors = Atomic.make 0;
      started = Clock.now_s ();
      hist = Telemetry.histogram "serve.request_us" }
  in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen lfd 16
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  cfg.log ~level:"info"
    (Printf.sprintf "listening on %s (%d worker domain(s), protocol v%d)"
       cfg.socket_path nw protocol_version);
  let domains =
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) workers
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let rdbuf = Bytes.create 65536 in
  let accept_conn () =
    match Unix.accept lfd with
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
      ->
        ()
    | fd, _ ->
        let cid = !next_cid in
        incr next_cid;
        Hashtbl.replace conns fd
          { fd; cid;
            rbuf = Buffer.create 256;
            cm = Mutex.create ();
            next_seq = 0;
            next_write = 0;
            pending = Hashtbl.create 8;
            write_ok = true;
            eof = false;
            inflight = 0 }
  in
  let drain_lines conn =
    let s = Buffer.contents conn.rbuf in
    let n = String.length s in
    let start = ref 0 in
    (try
       while true do
         let i = String.index_from s !start '\n' in
         let line = String.sub s !start (i - !start) in
         start := i + 1;
         handle_line t conn line
       done
     with Not_found -> ());
    Buffer.clear conn.rbuf;
    Buffer.add_substring conn.rbuf s !start (n - !start)
  in
  let read_conn conn =
    match Unix.read conn.fd rdbuf 0 (Bytes.length rdbuf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        conn.eof <- true
    | 0 -> conn.eof <- true
    | n ->
        Buffer.add_subbytes conn.rbuf rdbuf 0 n;
        if Buffer.length conn.rbuf > max_request_buffer then begin
          Atomic.incr t.errors;
          let seq = alloc_seq conn in
          deliver t conn seq
            (Wire.to_line
               (Wire.error ~id:Json.Null "request line too long"));
          conn.eof <- true
        end
        else drain_lines conn
  in
  let reap () =
    let dead =
      Hashtbl.fold
        (fun fd c acc ->
          Mutex.lock c.cm;
          let idle = c.inflight = 0 in
          let gone = (c.eof || not c.write_ok) && idle in
          Mutex.unlock c.cm;
          if gone then (fd, c) :: acc else acc)
        conns []
    in
    List.iter
      (fun (fd, _) ->
        Hashtbl.remove conns fd;
        try Unix.close fd with Unix.Unix_error _ -> ())
      dead
  in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let fds = lfd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      (match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = lfd then accept_conn ()
              else
                match Hashtbl.find_opt conns fd with
                | Some conn -> read_conn conn
                | None -> ())
            ready);
      reap ();
      loop ()
    end
  in
  loop ();
  (* Graceful drain: no new connections or reads; let workers finish
     what is queued, then persist the warm state. *)
  cfg.log ~level:"info" "stop requested, draining";
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let all_idle () =
    Array.for_all
      (fun w ->
        Mutex.lock w.qm;
        let e = w.queued = 0 in
        Mutex.unlock w.qm;
        e)
      workers
    && Hashtbl.fold
         (fun _ c acc ->
           Mutex.lock c.cm;
           let i = c.inflight in
           Mutex.unlock c.cm;
           acc && i = 0)
         conns true
  in
  let deadline = Clock.now_s () +. cfg.drain_timeout_s in
  while not (all_idle ()) && Clock.now_s () < deadline do
    Clock.sleepf 0.02
  done;
  Array.iter
    (fun w ->
      Mutex.lock w.qm;
      Condition.broadcast w.qc;
      Mutex.unlock w.qm)
    workers;
  Array.iter Domain.join domains;
  write_snapshot t;
  Hashtbl.iter
    (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    conns;
  cfg.log ~level:"info"
    (Printf.sprintf "stopped after %d request(s)" (Atomic.get t.requests))
