module Q = Commx_bigint.Rational
module B = Commx_bigint.Bigint

type q = Q.t
type t = q array (* lowest degree first, no trailing zeros *)

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && Q.is_zero a.(!n - 1) do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero : t = [||]
let one : t = [| Q.one |]
let x : t = [| Q.zero; Q.one |]

let of_coeffs a = normalize (Array.copy a)
let of_int_coeffs a = normalize (Array.map Q.of_int a)

let coeffs p = Array.copy p

let degree p = Array.length p - 1
let is_zero p = Array.length p = 0

let equal a b = Array.length a = Array.length b && Array.for_all2 Q.equal a b

let leading p =
  if is_zero p then invalid_arg "Poly.leading: zero polynomial";
  p.(Array.length p - 1)

let add a b =
  let la = Array.length a and lb = Array.length b in
  normalize
    (Array.init (max la lb) (fun i ->
         let va = if i < la then a.(i) else Q.zero in
         let vb = if i < lb then b.(i) else Q.zero in
         Q.add va vb))

let neg p = Array.map Q.neg p
let sub a b = add a (neg b)

let scale c p = if Q.is_zero c then zero else normalize (Array.map (Q.mul c) p)

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb - 1) Q.zero in
    for i = 0 to la - 1 do
      if not (Q.is_zero a.(i)) then
        for j = 0 to lb - 1 do
          r.(i + j) <- Q.add r.(i + j) (Q.mul a.(i) b.(j))
        done
    done;
    normalize r
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b and lb = leading b in
  let rem = Array.copy a in
  let da = degree a in
  if da < db then (zero, normalize rem)
  else begin
    let quot = Array.make (da - db + 1) Q.zero in
    for i = da - db downto 0 do
      let c = Q.div rem.(i + db) lb in
      quot.(i) <- c;
      if not (Q.is_zero c) then
        for j = 0 to db do
          rem.(i + j) <- Q.sub rem.(i + j) (Q.mul c b.(j))
        done
    done;
    (normalize quot, normalize rem)
  end

let rem a b = snd (divmod a b)

let monic p = if is_zero p then p else scale (Q.inv (leading p)) p

let rec gcd a b = if is_zero b then monic a else gcd b (rem a b)

let derivative p =
  if degree p <= 0 then zero
  else normalize (Array.init (degree p) (fun i -> Q.mul (Q.of_int (i + 1)) p.(i + 1)))

let eval p v =
  let acc = ref Q.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Q.add (Q.mul !acc v) p.(i)
  done;
  !acc

let squarefree p =
  if degree p <= 0 then p
  else begin
    let g = gcd p (derivative p) in
    if degree g <= 0 then p else fst (divmod p g)
  end

let sturm_chain p =
  let p0 = squarefree p in
  if is_zero p0 then []
  else begin
    let p1 = derivative p0 in
    let rec go acc prev cur =
      if is_zero cur then List.rev acc
      else begin
        let r = neg (rem prev cur) in
        go (cur :: acc) cur r
      end
    in
    go [ p0 ] p0 p1
  end

let sign_changes_at chain v =
  let signs =
    List.filter_map
      (fun p ->
        let s = Q.sign (eval p v) in
        if s = 0 then None else Some s)
      chain
  in
  let rec count = function
    | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + count rest
    | [ _ ] | [] -> 0
  in
  count signs

let count_roots_in p ~lo ~hi =
  if Q.compare lo hi >= 0 then invalid_arg "Poly.count_roots_in: lo >= hi";
  if degree p < 1 then 0
  else begin
    let chain = sturm_chain p in
    sign_changes_at chain lo - sign_changes_at chain hi
  end

let cauchy_root_bound p =
  if is_zero p then Q.one
  else begin
    let l = Q.abs (leading p) in
    let m =
      Array.fold_left
        (fun acc c ->
          let a = Q.abs c in
          if Q.compare a acc > 0 then a else acc)
        Q.zero
        (Array.sub p 0 (max 0 (Array.length p - 1)))
    in
    Q.add Q.one (Q.div m l)
  end

let count_positive_roots p =
  if degree p < 1 then 0
  else count_roots_in p ~lo:Q.zero ~hi:(cauchy_root_bound p)

let pp ppf p =
  if is_zero p then Format.pp_print_string ppf "0"
  else begin
    let first = ref true in
    Array.iteri
      (fun i c ->
        if not (Q.is_zero c) then begin
          if not !first then Format.pp_print_string ppf " + ";
          first := false;
          if i = 0 then Format.pp_print_string ppf (Q.to_string c)
          else if Q.equal c Q.one then Format.fprintf ppf "x^%d" i
          else Format.fprintf ppf "%s x^%d" (Q.to_string c) i
        end)
      p
  end

let gram_poly m =
  of_coeffs
    (Array.map Q.of_bigint (Charpoly.gram_charpoly m))

let distinct_singular_value_count m = count_positive_roots (gram_poly m)

let singular_values_in m ~lo ~hi = count_roots_in (gram_poly m) ~lo ~hi
