(** Smith normal form of integer matrices.

    Every integer matrix A factors as U·A·V = D with U, V unimodular
    and D diagonal with d₁ | d₂ | ... (the invariant factors).  The
    SNF refines everything Corollary 1.2 asks of a decomposition: the
    number of nonzero invariant factors is the rank (so it decides
    singularity), and their product is |det| for square nonsingular
    input.  Included as the integer-lattice counterpart of the LUP/QR
    decompositions in the corollary — a decomposition whose *output*
    again pins the Θ(k n²) communication bound. *)

val invariant_factors : Zmatrix.t -> Commx_bigint.Bigint.t list
(** The nonzero invariant factors d₁ | d₂ | ..., all positive, in
    divisibility order.  Length = rank. *)

val diagonal : Zmatrix.t -> Zmatrix.t
(** The full SNF diagonal matrix (same shape as the input). *)

val rank : Zmatrix.t -> int

val det_abs : Zmatrix.t -> Commx_bigint.Bigint.t
(** |det| = product of invariant factors for square input (0 when
    rank-deficient). @raise Invalid_argument if not square. *)

val is_singular : Zmatrix.t -> bool

val divisibility_chain_ok : Commx_bigint.Bigint.t list -> bool
(** Checks d₁ | d₂ | ... — the defining invariant, used in tests. *)
