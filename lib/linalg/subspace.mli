(** Exact subspaces of ℚ^n.

    A subspace is stored as a reduced-row-echelon basis, which makes
    equality and membership canonical.  This module is the engine
    behind the paper's singularity criterion (Lemma 3.2: M is singular
    iff B·u lies in Span(A)), the span-intersection argument of
    Lemma 3.6, the projection argument of Lemma 3.7, and the
    Lovász–Saks vector-space span problem from Section 1. *)

type t

type vec = Commx_bigint.Rational.t array

val ambient_dim : t -> int
val dim : t -> int

val zero_space : int -> t
(** The trivial subspace of ℚ^n. *)

val full_space : int -> t

val of_vectors : int -> vec list -> t
(** [of_vectors n vs] is the span of [vs] in ℚ^n.  Every vector must
    have length [n]. *)

val of_matrix_columns : Qmatrix.t -> t
(** Column space ("range"). *)

val of_matrix_rows : Qmatrix.t -> t

val basis : t -> vec list
(** Canonical (RREF) basis, [dim] vectors. *)

val mem : vec -> t -> bool
(** Exact membership. *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val add : t -> t -> t
(** Sum of subspaces (span of the union). *)

val intersect : t -> t -> t
(** Exact intersection, computed from the nullspace of the stacked
    basis matrix. *)

val intersect_many : t list -> t
(** Fold of {!intersect}; the full space for an empty list is not
    defined, so the list must be non-empty.
    @raise Invalid_argument on an empty list. *)

val spans_everything : t -> bool
(** Is this subspace all of ℚ^n? *)

val project : t -> int array -> t
(** [project s coords] is the image of [s] under the coordinate
    projection keeping the listed coordinates, in order — the map
    [p] used in Lemma 3.7's dimension-counting argument. *)

val contains_columns : t -> Qmatrix.t -> bool
(** Do all columns of the matrix lie in the subspace? *)

val pp : Format.formatter -> t -> unit
