type t = {
  u : float array array;
  sigma : float array;
  v : float array array;
}

let dims a = (Array.length a, if Array.length a = 0 then 0 else Array.length a.(0))

let transpose a =
  let m, n = dims a in
  Array.init n (fun i -> Array.init m (fun j -> a.(j).(i)))

let mat_mul a b =
  let m, k = dims a in
  let k', n = dims b in
  if k <> k' then invalid_arg "Svd.mat_mul";
  Array.init m (fun i ->
      Array.init n (fun j ->
          let s = ref 0.0 in
          for l = 0 to k - 1 do
            s := !s +. (a.(i).(l) *. b.(l).(j))
          done;
          !s))

(* One-sided Jacobi: orthogonalize the columns of a working copy W of A
   by plane rotations, accumulating them into V; at convergence the
   column norms of W are the singular values and W's normalized columns
   are U.  Straightforward and robust for the modest sizes we need. *)
let decompose_tall a =
  let m, n = dims a in
  assert (m >= n);
  let w = Array.map Array.copy a in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let col_dot j1 j2 =
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      s := !s +. (w.(i).(j1) *. w.(i).(j2))
    done;
    !s
  in
  let eps = 1e-14 in
  let max_sweeps = 60 in
  let sweep = ref 0 in
  let converged = ref false in
  while (not !converged) && !sweep < max_sweeps do
    incr sweep;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let app = col_dot p p and aqq = col_dot q q and apq = col_dot p q in
        if Float.abs apq > eps *. sqrt (app *. aqq) && apq <> 0.0 then begin
          converged := false;
          let tau = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if tau >= 0.0 then 1.0 else -1.0 in
            s /. ((s *. tau) +. sqrt (1.0 +. (tau *. tau)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let wip = w.(i).(p) and wiq = w.(i).(q) in
            w.(i).(p) <- (c *. wip) -. (s *. wiq);
            w.(i).(q) <- (s *. wip) +. (c *. wiq)
          done;
          for i = 0 to n - 1 do
            let vip = v.(i).(p) and viq = v.(i).(q) in
            v.(i).(p) <- (c *. vip) -. (s *. viq);
            v.(i).(q) <- (s *. vip) +. (c *. viq)
          done
        end
      done
    done
  done;
  (* Column norms and normalized U; sort descending. *)
  let sigma = Array.init n (fun j -> sqrt (col_dot j j)) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare sigma.(j) sigma.(i)) order;
  let sigma_sorted = Array.map (fun j -> sigma.(j)) order in
  let u =
    Array.init m (fun i ->
        Array.init n (fun jj ->
            let j = order.(jj) in
            if sigma.(j) > 0.0 then w.(i).(j) /. sigma.(j) else 0.0))
  in
  let v_sorted = Array.init n (fun i -> Array.init n (fun jj -> v.(i).(order.(jj)))) in
  { u; sigma = sigma_sorted; v = v_sorted }

let decompose a =
  let m, n = dims a in
  if m >= n then decompose_tall a
  else begin
    (* A = U S V^T  <=>  A^T = V S U^T *)
    let d = decompose_tall (transpose a) in
    { u = d.v; sigma = d.sigma; v = d.u }
  end

let singular_values a = (decompose a).sigma

let numeric_rank ?(tol = 1e-9) a =
  let s = singular_values a in
  if Array.length s = 0 then 0
  else begin
    let smax = s.(0) in
    if smax = 0.0 then 0
    else Array.fold_left (fun acc x -> if x > tol *. smax then acc + 1 else acc) 0 s
  end

let reconstruct d =
  let n = Array.length d.sigma in
  let sv =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then d.sigma.(i) else 0.0))
  in
  mat_mul (mat_mul d.u sv) (transpose d.v)

let max_abs_diff a b =
  let m, n = dims a in
  let m', n' = dims b in
  if m <> m' || n <> n' then invalid_arg "Svd.max_abs_diff";
  let worst = ref 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      worst := Float.max !worst (Float.abs (a.(i).(j) -. b.(i).(j)))
    done
  done;
  !worst

let of_zmatrix z =
  let module B = Commx_bigint.Bigint in
  Array.init (Zmatrix.rows z) (fun i ->
      Array.init (Zmatrix.cols z) (fun j ->
          let v = Zmatrix.get z i j in
          if B.bit_length v > 53 then
            failwith "Svd.of_zmatrix: entry exceeds double mantissa"
          else float_of_int (B.to_int v)))
