(** Algebraic structure signatures and the instances used throughout
    the library.

    The exact linear-algebra layer is written once, generically, and
    instantiated three times: over the integers ℤ (for Bareiss
    fraction-free elimination and Hadamard bounds), over the rationals
    ℚ (for rank / solve / LUP / span operations — the decisions the
    paper's problems reduce to), and over prime fields GF(p) (for the
    fingerprinting protocol and the CRT determinant). *)

module type RING = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val to_string : t -> string
end

module type FIELD = sig
  include RING

  val inv : t -> t
  (** @raise Division_by_zero on zero. *)

  val div : t -> t -> t
end

(** The integers. *)
module Z : RING with type t = Commx_bigint.Bigint.t = struct
  include Commx_bigint.Bigint

  let to_string = Commx_bigint.Bigint.to_string
end

(** The rationals. *)
module Q : FIELD with type t = Commx_bigint.Rational.t = struct
  include Commx_bigint.Rational

  let to_string = Commx_bigint.Rational.to_string
end

(** Prime fields with word-size moduli.  The functor argument carries
    the modulus; primality is the caller's responsibility (checked in
    debug builds via {!Commx_bigint.Primes.is_prime}). *)
module type PRIME = sig
  val p : int
end

module Gfp (P : PRIME) : sig
  include FIELD with type t = int

  val of_int : int -> t
  val of_bigint : Commx_bigint.Bigint.t -> t
  val p : int
end = struct
  type t = int

  let p = P.p
  let m = Commx_bigint.Modarith.Word.modulus P.p

  let () = assert (Commx_bigint.Primes.is_prime P.p)

  let zero = 0
  let one = 1 mod P.p
  let add = Commx_bigint.Modarith.Word.add m
  let sub = Commx_bigint.Modarith.Word.sub m
  let neg = Commx_bigint.Modarith.Word.neg m
  let mul = Commx_bigint.Modarith.Word.mul m
  let inv = Commx_bigint.Modarith.Word.inv m
  let div a b = mul a (inv b)
  let equal = Int.equal
  let is_zero x = x = 0
  let to_string = string_of_int
  let of_int = Commx_bigint.Modarith.Word.reduce m
  let of_bigint = Commx_bigint.Modarith.Word.reduce_big m
end
