(** Floating-point singular value decomposition (one-sided Jacobi).

    Corollary 1.2(d) covers the SVD.  Singular values are generally
    irrational, so an exact SVD over ℚ does not exist; what the paper's
    reduction actually uses is the *rank* information the SVD carries
    (the number of nonzero singular values) — and that part we decide
    exactly elsewhere.  This module is the numerical substrate: a
    self-contained one-sided Jacobi SVD used to (a) exercise the
    Corollary 1.2(d) reduction end-to-end and (b) cross-check that the
    numerical rank (singular values above a tolerance) agrees with the
    exact rank on integer matrices of moderate bit size.  It is never
    used for decisions in the core library. *)

type t = {
  u : float array array;  (** m x n, orthonormal columns for the nonzero part *)
  sigma : float array;  (** n singular values, descending, >= 0 *)
  v : float array array;  (** n x n orthogonal *)
}

val decompose : float array array -> t
(** One-sided Jacobi on an [m x n] matrix with [m >= n] (transpose
    first otherwise; this function handles both shapes). *)

val singular_values : float array array -> float array
(** Descending singular values. *)

val numeric_rank : ?tol:float -> float array array -> int
(** Singular values above [tol * max sigma] (default relative tolerance
    1e-9). *)

val reconstruct : t -> float array array
(** [u * diag(sigma) * v^T], for verification. *)

val max_abs_diff : float array array -> float array array -> float

val of_zmatrix : Zmatrix.t -> float array array
(** Entry-wise conversion (exact while entries fit a double's mantissa;
    fails loudly beyond 2^53). *)
