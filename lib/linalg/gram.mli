(** Exact QR structure via Gram–Schmidt over ℚ.

    True QR needs square roots, which leave ℚ; but Corollary 1.2(c)
    only requires the *nonzero structure* of the factors, and the
    unnormalized Gram–Schmidt factorization [A = Q·R] — [Q] with
    pairwise-orthogonal (not unit) columns, [R] unit upper triangular —
    has exactly the same support as the orthonormal QR whenever the
    leading principal minors are nonsingular, and is computable
    exactly.  This module provides that factorization together with
    verification predicates. *)

type t = {
  q : Qmatrix.t;  (** pairwise-orthogonal columns (zero columns where the input column was dependent on its predecessors) *)
  r : Qmatrix.t;  (** unit upper triangular *)
}

val decompose : Qmatrix.t -> t
(** Classical Gram–Schmidt, exact.  Input may be any [m x n] matrix. *)

val verify : Qmatrix.t -> t -> bool
(** Checks [A = Q·R], orthogonality of the nonzero columns of [Q], and
    unit-upper-triangularity of [R]. *)

val columns_orthogonal : Qmatrix.t -> bool
(** Are all pairs of distinct nonzero columns orthogonal? *)

val rank_from_q : t -> int
(** Number of nonzero columns of [q] — equals the matrix rank. *)
