(** Integer matrices.

    Structural operations come from [Matrix.Make] over ℤ; on top we add
    the integer-specific machinery the reproduction needs:

    - {!det_bareiss}: fraction-free Gaussian elimination (Bareiss 1968).
      All intermediate values are exact integers (each is itself a minor
      of the input), avoiding rational blow-up.
    - {!hadamard_bound}: Hadamard's inequality, used to size the CRT
      prime ladder.
    - {!det_crt}: determinant by Chinese remaindering over word-size
      primes — the "fast path" benched against Bareiss in the ablation.
    - {!rank}: exact rank (delegated to elimination over ℚ).
    - reductions mod p for the fingerprinting protocol. *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module P = Commx_bigint.Primes
include Matrix.Make (Ring.Z)

let of_int_array2 a =
  let nrows = Array.length a in
  let ncols = if nrows = 0 then 0 else Array.length a.(0) in
  if Array.exists (fun r -> Array.length r <> ncols) a then
    invalid_arg "Zmatrix.of_int_array2: ragged";
  init nrows ncols (fun i j -> B.of_int a.(i).(j))

let of_int_fn rows cols f = init rows cols (fun i j -> B.of_int (f i j))

let to_qmatrix m = Qmatrix.of_bigint_fn (rows m) (cols m) (get m)

let random ?(signed = true) g ~rows:nr ~cols:nc ~bits =
  init nr nc (fun _ _ ->
      let v = B.random_bits g bits in
      if signed && Commx_util.Prng.bool g then B.neg v else v)

(** Uniform entries in [\[0, 2^k - 1\]] — the paper's input format for
    k-bit matrices. *)
let random_kbit g ~rows:nr ~cols:nc ~k = random ~signed:false g ~rows:nr ~cols:nc ~bits:k

(** Random matrix of *exactly* the requested rank: a random
    rank-[target] diagonal conjugated by unit triangular matrices with
    small entries (determinant ±1, so the rank is exact, not just an
    upper bound).  Entry magnitudes are not k-bit bounded — this is a
    workload generator for rank-sensitive tests and benches. *)
let random_of_rank g ~rows:nr ~cols:nc ~rank:target =
  if target < 0 || target > Stdlib.min nr nc then
    invalid_arg "Zmatrix.random_of_rank";
  let d =
    init nr nc (fun i j ->
        if i = j && i < target then
          B.of_int (1 + Commx_util.Prng.int g 9)
        else B.zero)
  in
  let unit_lower n =
    init n n (fun i j ->
        if i = j then B.one
        else if j < i then B.of_int (Commx_util.Prng.int_incl g (-2) 2)
        else B.zero)
  in
  let unit_upper n =
    init n n (fun i j ->
        if i = j then B.one
        else if j > i then B.of_int (Commx_util.Prng.int_incl g (-2) 2)
        else B.zero)
  in
  mul (unit_lower nr) (mul d (unit_upper nc))

(* ------------------------------------------------------------------ *)
(* Bareiss fraction-free elimination                                   *)
(* ------------------------------------------------------------------ *)

(** [det_bareiss m] is the exact determinant.  The Bareiss recurrence
    [a'(i,j) = (a(r,r) * a(i,j) - a(i,r) * a(r,j)) / prev_pivot] keeps
    every intermediate entry an exact integer minor of the input. *)
let det_bareiss m =
  if not (is_square m) then invalid_arg "Zmatrix.det_bareiss: not square";
  let n = rows m in
  if n = 0 then B.one
  else begin
    let a = copy m in
    let sign = ref 1 in
    let prev = ref B.one in
    let result = ref None in
    (try
       for r = 0 to n - 2 do
         (* Pivot: any nonzero entry in column r at or below row r. *)
         if B.is_zero (get a r r) then begin
           let piv = ref (-1) in
           (try
              for i = r + 1 to n - 1 do
                if not (B.is_zero (get a i r)) then begin
                  piv := i;
                  raise Exit
                end
              done
            with Exit -> ());
           if !piv < 0 then begin
             result := Some B.zero;
             raise Exit
           end;
           swap_rows a r !piv;
           sign := - !sign
         end;
         let arr = get a r r in
         for i = r + 1 to n - 1 do
           for j = r + 1 to n - 1 do
             let v =
               B.div
                 (B.sub (B.mul arr (get a i j)) (B.mul (get a i r) (get a r j)))
                 !prev
             in
             set a i j v
           done;
           set a i r B.zero
         done;
         prev := arr
       done
     with Exit -> ());
    match !result with
    | Some d -> d
    | None ->
        let d = get a (n - 1) (n - 1) in
        if !sign < 0 then B.neg d else d
  end

let det = det_bareiss

let is_singular m = B.is_zero (det_bareiss m)

let rank m = Qmatrix.rank (to_qmatrix m)

(* ------------------------------------------------------------------ *)
(* Batched Lemma 3.2 singularity                                       *)
(* ------------------------------------------------------------------ *)

module W = Commx_bigint.Modarith.Word

(* Determinant of [m] modulo a word prime, eliminated entirely in a
   word-size residue workspace checked out of [arena].  Unlike
   {!det_mod_p} (which instantiates the [Ring.Gfp] functor and boxes
   every residue), this touches the bignum layer only through
   [B.rem_int], so the whole elimination allocates nothing past the
   arena's steady state. *)
let det_word_mod arena mw m n =
  let p = W.to_int mw in
  let a = B.Arena.alloc arena (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.((i * n) + j) <- B.rem_int (get m i j) p
    done
  done;
  let det = ref 1 in
  (try
     for c = 0 to n - 1 do
       let piv = ref (-1) in
       let r = ref c in
       while !piv < 0 && !r < n do
         if a.((!r * n) + c) <> 0 then piv := !r;
         incr r
       done;
       if !piv < 0 then begin
         det := 0;
         raise Exit
       end;
       if !piv <> c then begin
         for j = c to n - 1 do
           let t = a.((c * n) + j) in
           a.((c * n) + j) <- a.((!piv * n) + j);
           a.((!piv * n) + j) <- t
         done;
         det := W.neg mw !det
       end;
       let pv = a.((c * n) + c) in
       det := W.mul mw !det pv;
       let pinv = W.inv mw pv in
       for r2 = c + 1 to n - 1 do
         let f = W.mul mw a.((r2 * n) + c) pinv in
         if f <> 0 then
           for j = c to n - 1 do
             a.((r2 * n) + j) <- W.sub mw a.((r2 * n) + j) (W.mul mw f a.((c * n) + j))
           done
       done
     done
   with Exit -> ());
  B.Arena.release arena a;
  !det

(* The two largest primes below 2^30 — the top of the same ladder
   {!det_crt} draws from.  Computed once per process, not per batch. *)
let batch_primes =
  lazy
    (let p1 = P.nth_prime_below 0 ((1 lsl 30) + 1) in
     let p2 = P.nth_prime_below 0 p1 in
     (W.modulus p1, W.modulus p2))

let singular_batch ms =
  Array.iter
    (fun m -> if not (is_square m) then invalid_arg "Zmatrix.singular_batch: not square")
    ms;
  let m1, m2 = Lazy.force batch_primes in
  let arena = B.Arena.create () in
  Array.map
    (fun m ->
      let n = rows m in
      (* A determinant that survives mod either prime certifies
         nonsingularity with zero bignum allocation; only matrices
         vanishing mod both escalate to the exact Bareiss determinant,
         which is the sole sound witness of singularity.  Random k-bit
         nonsingular matrices essentially never reach the exact path
         (that would need det divisible by two ~2^30 primes). *)
      if n = 0 then is_singular m
      else if det_word_mod arena m1 m n <> 0 then false
      else if det_word_mod arena m2 m n <> 0 then false
      else is_singular m)
    ms

(* ------------------------------------------------------------------ *)
(* Hadamard bound and CRT determinant                                  *)
(* ------------------------------------------------------------------ *)

(** [hadamard_bound m]: an integer H with |det m| <= H, from Hadamard's
    inequality |det| <= prod_i ||row_i||_2, computed without square
    roots as ceil over the product of row-norm squares. *)
let hadamard_bound m =
  if not (is_square m) then invalid_arg "Zmatrix.hadamard_bound";
  let n = rows m in
  if n = 0 then B.one
  else begin
    (* prod ||r_i||^2, then isqrt rounded up. *)
    let prod = ref B.one in
    for i = 0 to n - 1 do
      let s = ref B.zero in
      for j = 0 to n - 1 do
        let v = get m i j in
        s := B.add !s (B.mul v v)
      done;
      (* A zero row forces det = 0; bound 0 is fine. *)
      prod := B.mul !prod !s
    done;
    if B.is_zero !prod then B.zero else B.isqrt_ceil !prod
  end

(** Determinant modulo a word prime, via GF(p) elimination — O(n^3)
    word operations. *)
let det_mod_p m p =
  if not (is_square m) then invalid_arg "Zmatrix.det_mod_p";
  let module F =
    Ring.Gfp (struct
      let p = p
    end)
  in
  let module Mp = Matrix.Make_field (F) in
  let mp = Mp.init (rows m) (cols m) (fun i j -> F.of_bigint (get m i j)) in
  Mp.det mp

(** Rank modulo a word prime.  A lower bound on the true rank; equal to
    it for all but finitely many primes. *)
let rank_mod_p m p =
  let module F =
    Ring.Gfp (struct
      let p = p
    end)
  in
  let module Mp = Matrix.Make_field (F) in
  let mp = Mp.init (rows m) (cols m) (fun i j -> F.of_bigint (get m i j)) in
  Mp.rank mp

(** [det_crt m] computes the determinant by Chinese remaindering
    det mod p over enough word-size primes that the product of moduli
    exceeds twice the Hadamard bound, then lifting to the symmetric
    range. *)
let det_crt m =
  if not (is_square m) then invalid_arg "Zmatrix.det_crt";
  if rows m = 0 then B.one
  else begin
    let bound = B.add (B.shift_left (hadamard_bound m) 1) B.one in
    (* Collect primes descending from 2^30 until their product covers
       the bound. *)
    let residues = ref [] in
    let product = ref B.one in
    let p = ref ((1 lsl 30) + 1) in
    while B.compare !product bound <= 0 do
      p := P.nth_prime_below 0 !p;
      let r = det_mod_p m !p in
      residues := (B.of_int r, B.of_int !p) :: !residues;
      product := B.mul !product (B.of_int !p)
    done;
    let x, modulus = Commx_bigint.Modarith.crt !residues in
    (* Symmetric lift: values above modulus/2 are negative. *)
    let half = B.shift_right modulus 1 in
    if B.compare x half > 0 then B.sub x modulus else x
  end

(* ------------------------------------------------------------------ *)
(* Misc                                                                *)
(* ------------------------------------------------------------------ *)

(** Total number of bits needed to transmit the matrix when every entry
    is known to fit in [k] bits — the paper's input-size measure. *)
let encoding_bits m ~k = rows m * cols m * k

let max_entry_bits m =
  Array.fold_left
    (fun acc i -> Stdlib.max acc i)
    0
    (Array.init (rows m * cols m) (fun i ->
         B.bit_length (get m (i / cols m) (i mod cols m))))
