(** Generic dense matrices over a ring, and Gaussian elimination over a
    field.

    [Make] provides the structural operations shared by every
    instantiation; [Make_field] adds exact elimination-based
    computations: reduced row echelon form, rank, determinant, linear
    solve, inverse, and nullspace.  Elimination uses exact field
    arithmetic, so results are decisions, not approximations — this is
    what "Singularity Testing" means in the paper. *)

module Make (R : Ring.RING) = struct
  type elt = R.t

  type t = { rows : int; cols : int; data : R.t array }
  (* Row-major flat storage. *)

  let rows m = m.rows
  let cols m = m.cols
  let is_square m = m.rows = m.cols

  let make rows cols v =
    if rows < 0 || cols < 0 then invalid_arg "Matrix.make";
    { rows; cols; data = Array.make (rows * cols) v }

  let zero rows cols = make rows cols R.zero

  let init rows cols f =
    if rows < 0 || cols < 0 then invalid_arg "Matrix.init";
    { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

  let check m i j =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg "Matrix: index out of bounds"

  let get m i j =
    check m i j;
    m.data.((i * m.cols) + j)

  let set m i j v =
    check m i j;
    m.data.((i * m.cols) + j) <- v

  let copy m = { m with data = Array.copy m.data }

  let identity n = init n n (fun i j -> if i = j then R.one else R.zero)

  let equal a b =
    a.rows = b.rows && a.cols = b.cols
    && Array.for_all2 R.equal a.data b.data

  let is_zero_matrix m = Array.for_all R.is_zero m.data

  let map f m = { m with data = Array.map f m.data }

  let mapi f m =
    {
      m with
      data = Array.mapi (fun i v -> f (i / m.cols) (i mod m.cols) v) m.data;
    }

  let add a b =
    if a.rows <> b.rows || a.cols <> b.cols then
      invalid_arg "Matrix.add: dimension mismatch";
    { a with data = Array.map2 R.add a.data b.data }

  let sub a b =
    if a.rows <> b.rows || a.cols <> b.cols then
      invalid_arg "Matrix.sub: dimension mismatch";
    { a with data = Array.map2 R.sub a.data b.data }

  let neg m = map R.neg m

  let scale c m = map (R.mul c) m

  let mul a b =
    if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
    let r = zero a.rows b.cols in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = a.data.((i * a.cols) + k) in
        if not (R.is_zero aik) then
          for j = 0 to b.cols - 1 do
            r.data.((i * b.cols) + j) <-
              R.add r.data.((i * b.cols) + j) (R.mul aik b.data.((k * b.cols) + j))
          done
      done
    done;
    r

  let transpose m = init m.cols m.rows (fun i j -> get m j i)

  let row m i = Array.init m.cols (fun j -> get m i j)
  let col m j = Array.init m.rows (fun i -> get m i j)

  let of_rows rows_list =
    match rows_list with
    | [] -> zero 0 0
    | first :: _ ->
        let cols = Array.length first in
        if List.exists (fun r -> Array.length r <> cols) rows_list then
          invalid_arg "Matrix.of_rows: ragged rows";
        let rows_arr = Array.of_list rows_list in
        init (Array.length rows_arr) cols (fun i j -> rows_arr.(i).(j))

  let to_rows m = List.init m.rows (row m)

  let of_cols cols_list = transpose (of_rows cols_list)

  let submatrix m row_idx col_idx =
    init (Array.length row_idx) (Array.length col_idx) (fun i j ->
        get m row_idx.(i) col_idx.(j))

  let delete_row_col m di dj =
    if m.rows = 0 || m.cols = 0 then invalid_arg "Matrix.delete_row_col";
    init (m.rows - 1) (m.cols - 1) (fun i j ->
        get m (if i < di then i else i + 1) (if j < dj then j else j + 1))

  let hcat a b =
    if a.rows <> b.rows then invalid_arg "Matrix.hcat: row mismatch";
    init a.rows (a.cols + b.cols) (fun i j ->
        if j < a.cols then get a i j else get b i (j - a.cols))

  let vcat a b =
    if a.cols <> b.cols then invalid_arg "Matrix.vcat: column mismatch";
    init (a.rows + b.rows) a.cols (fun i j ->
        if i < a.rows then get a i j else get b (i - a.rows) j)

  let swap_rows m i1 i2 =
    if i1 <> i2 then
      for j = 0 to m.cols - 1 do
        let t = get m i1 j in
        set m i1 j (get m i2 j);
        set m i2 j t
      done

  let swap_cols m j1 j2 =
    if j1 <> j2 then
      for i = 0 to m.rows - 1 do
        let t = get m i j1 in
        set m i j1 (get m i j2);
        set m i j2 t
      done

  let permute_rows m perm =
    if Array.length perm <> m.rows then invalid_arg "Matrix.permute_rows";
    init m.rows m.cols (fun i j -> get m perm.(i) j)

  let permute_cols m perm =
    if Array.length perm <> m.cols then invalid_arg "Matrix.permute_cols";
    init m.rows m.cols (fun i j -> get m i perm.(j))

  let mul_vec m v =
    if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec";
    Array.init m.rows (fun i ->
        let acc = ref R.zero in
        for j = 0 to m.cols - 1 do
          acc := R.add !acc (R.mul (get m i j) v.(j))
        done;
        !acc)

  let dot u v =
    if Array.length u <> Array.length v then invalid_arg "Matrix.dot";
    let acc = ref R.zero in
    Array.iteri (fun i ui -> acc := R.add !acc (R.mul ui v.(i))) u;
    !acc

  let trace m =
    if not (is_square m) then invalid_arg "Matrix.trace";
    let acc = ref R.zero in
    for i = 0 to m.rows - 1 do
      acc := R.add !acc (get m i i)
    done;
    !acc

  (* Laplace-expansion determinant: exponential, used only as an oracle
     for tests on matrices of dimension <= 6. *)
  let det_laplace m =
    if not (is_square m) then invalid_arg "Matrix.det_laplace";
    let rec go m =
      match rows m with
      | 0 -> R.one
      | 1 -> get m 0 0
      | n ->
          let acc = ref R.zero in
          for j = 0 to n - 1 do
            let a0j = get m 0 j in
            if not (R.is_zero a0j) then begin
              let minor = delete_row_col m 0 j in
              let term = R.mul a0j (go minor) in
              acc := if j land 1 = 0 then R.add !acc term else R.sub !acc term
            end
          done;
          !acc
    in
    go m

  let pp ppf m =
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.rows - 1 do
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "[";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf ppf ", ";
        Format.pp_print_string ppf (R.to_string (get m i j))
      done;
      Format.fprintf ppf "]"
    done;
    Format.fprintf ppf "@]"

  let to_string m = Format.asprintf "%a" pp m
end

module Make_field (F : Ring.FIELD) = struct
  include Make (F)

  (** Reduced row echelon form.  Returns [(rref, rank, pivot_cols,
      det_factor)] where [det_factor] tracks row swaps and scalings so
      square determinants can be recovered; [pivot_cols.(r)] is the
      pivot column of row [r] for [r < rank]. *)
  let rref_full m =
    let a = copy m in
    let nrows = rows a and ncols = cols a in
    let pivots = ref [] in
    let det_factor = ref F.one in
    let pr = ref 0 in
    for pc = 0 to ncols - 1 do
      if !pr < nrows then begin
        (* Find a pivot in column pc at or below row pr. *)
        let piv = ref (-1) in
        (try
           for i = !pr to nrows - 1 do
             if not (F.is_zero (get a i pc)) then begin
               piv := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !piv >= 0 then begin
          if !piv <> !pr then begin
            swap_rows a !piv !pr;
            det_factor := F.neg !det_factor
          end;
          let pval = get a !pr pc in
          det_factor := F.mul !det_factor pval;
          let ipval = F.inv pval in
          for j = pc to ncols - 1 do
            set a !pr j (F.mul ipval (get a !pr j))
          done;
          for i = 0 to nrows - 1 do
            if i <> !pr then begin
              let f = get a i pc in
              if not (F.is_zero f) then
                for j = pc to ncols - 1 do
                  set a i j (F.sub (get a i j) (F.mul f (get a !pr j)))
                done
            end
          done;
          pivots := pc :: !pivots;
          incr pr
        end
      end
    done;
    (a, !pr, Array.of_list (List.rev !pivots), !det_factor)

  let rref m =
    let r, _, _, _ = rref_full m in
    r

  let rank m =
    let _, r, _, _ = rref_full m in
    r

  let det m =
    if not (is_square m) then invalid_arg "Matrix.det: not square";
    let _, r, _, factor = rref_full m in
    if r < rows m then F.zero else factor

  let is_singular m =
    if not (is_square m) then invalid_arg "Matrix.is_singular: not square";
    rank m < rows m

  let inverse m =
    if not (is_square m) then invalid_arg "Matrix.inverse: not square";
    let n = rows m in
    let aug = hcat m (identity n) in
    let r, _, pivots, _ = rref_full aug in
    (* Invertible iff the left block supplies the first n pivots (the
       identity block always brings the augmented rank up to n). *)
    let left_pivots = Array.for_all (fun pc -> pc < n) (Array.sub pivots 0 (Stdlib.min n (Array.length pivots))) in
    if Array.length pivots < n || not left_pivots then None
    else Some (init n n (fun i j -> get r i (n + j)))

  (** [solve a b] decides the linear system [a x = b] (b a column
      vector): [None] when inconsistent, otherwise [Some x] for one
      particular solution. *)
  let solve a b =
    if Array.length b <> rows a then invalid_arg "Matrix.solve";
    let bcol = init (rows a) 1 (fun i _ -> b.(i)) in
    let aug = hcat a bcol in
    let r, rk, pivots, _ = rref_full aug in
    (* Inconsistent iff some pivot lands in the appended column. *)
    let inconsistent = Array.exists (fun pc -> pc = cols a) pivots in
    if inconsistent then None
    else begin
      let x = Array.make (cols a) F.zero in
      Array.iteri
        (fun pr pc -> if pc < cols a then x.(pc) <- get r pr (cols a))
        (Array.sub pivots 0 rk);
      Some x
    end

  let solvable a b = solve a b <> None

  (** Basis of the right nullspace \{x : m x = 0\}, one array per basis
      vector. *)
  let nullspace m =
    let r, rk, pivots, _ = rref_full m in
    let ncols = cols m in
    let is_pivot = Array.make ncols false in
    Array.iter (fun pc -> is_pivot.(pc) <- true) pivots;
    let free = ref [] in
    for j = ncols - 1 downto 0 do
      if not is_pivot.(j) then free := j :: !free
    done;
    List.map
      (fun fj ->
        let v = Array.make ncols F.zero in
        v.(fj) <- F.one;
        (* Each pivot row reads: x_pivot + sum over free cols = 0. *)
        for pr = 0 to rk - 1 do
          let pc = pivots.(pr) in
          v.(pc) <- F.neg (get r pr fj)
        done;
        v)
      !free

  (** Row-space basis: the nonzero rows of the RREF. *)
  let row_space_basis m =
    let r, rk, _, _ = rref_full m in
    List.init rk (row r)

  (** Column-space ("range") basis: the columns of [m] at the pivot
      positions. *)
  let col_space_basis m =
    let _, _, pivots, _ = rref_full m in
    Array.to_list (Array.map (col m) pivots)
end
