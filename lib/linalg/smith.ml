module B = Commx_bigint.Bigint

(* Classic elimination to Smith normal form.  We work on a mutable
   copy; U and V are not tracked (no caller needs them — rank,
   invariant factors and |det| are the outputs of record). *)

let smith_diagonal m =
  let a = Zmatrix.copy m in
  let rows = Zmatrix.rows a and cols = Zmatrix.cols a in
  let limit = min rows cols in
  let exception Restart in
  for t = 0 to limit - 1 do
    (* Find a nonzero pivot in the trailing submatrix. *)
    let pivot = ref None in
    (try
       for i = t to rows - 1 do
         for j = t to cols - 1 do
           if not (B.is_zero (Zmatrix.get a i j)) then begin
             pivot := Some (i, j);
             raise Exit
           end
         done
       done
     with Exit -> ());
    match !pivot with
    | None -> ()
    | Some (pi, pj) ->
        Zmatrix.swap_rows a t pi;
        Zmatrix.swap_cols a t pj;
        let finished = ref false in
        while not !finished do
          try
            (* Clear column t below the pivot by euclidean steps. *)
            for i = t + 1 to rows - 1 do
              let v = Zmatrix.get a i t in
              if not (B.is_zero v) then begin
                let p = Zmatrix.get a t t in
                let q = B.div v p in
                (* row_i -= q * row_t *)
                for j = t to cols - 1 do
                  Zmatrix.set a i j
                    (B.sub (Zmatrix.get a i j) (B.mul q (Zmatrix.get a t j)))
                done;
                if not (B.is_zero (Zmatrix.get a i t)) then begin
                  (* remainder smaller than pivot: swap up and restart *)
                  Zmatrix.swap_rows a t i;
                  raise Restart
                end
              end
            done;
            (* Clear row t right of the pivot. *)
            for j = t + 1 to cols - 1 do
              let v = Zmatrix.get a t j in
              if not (B.is_zero v) then begin
                let p = Zmatrix.get a t t in
                let q = B.div v p in
                for i = t to rows - 1 do
                  Zmatrix.set a i j
                    (B.sub (Zmatrix.get a i j) (B.mul q (Zmatrix.get a i t)))
                done;
                if not (B.is_zero (Zmatrix.get a t j)) then begin
                  Zmatrix.swap_cols a t j;
                  raise Restart
                end
              end
            done;
            (* Pivot must divide every remaining entry; if some entry
               resists, fold its row into row t and restart. *)
            let p = Zmatrix.get a t t in
            let offender = ref None in
            (try
               for i = t + 1 to rows - 1 do
                 for j = t + 1 to cols - 1 do
                   if not (B.is_zero (B.rem (Zmatrix.get a i j) p)) then begin
                     offender := Some i;
                     raise Exit
                   end
                 done
               done
             with Exit -> ());
            (match !offender with
            | Some i ->
                for j = t to cols - 1 do
                  Zmatrix.set a t j
                    (B.add (Zmatrix.get a t j) (Zmatrix.get a i j))
                done;
                raise Restart
            | None -> ());
            (* Normalize the pivot sign. *)
            if B.sign (Zmatrix.get a t t) < 0 then
              for j = t to cols - 1 do
                Zmatrix.set a t j (B.neg (Zmatrix.get a t j))
              done;
            finished := true
          with Restart -> ()
        done
  done;
  a

let diagonal m =
  let d = smith_diagonal m in
  (* zero out numerical noise off the diagonal (elimination leaves the
     matrix diagonal already; this is belt and braces for the returned
     value's contract) *)
  Zmatrix.init (Zmatrix.rows d) (Zmatrix.cols d) (fun i j ->
      if i = j then Zmatrix.get d i j else B.zero)

let invariant_factors m =
  let d = smith_diagonal m in
  let limit = min (Zmatrix.rows d) (Zmatrix.cols d) in
  let rec collect i acc =
    if i >= limit then List.rev acc
    else begin
      let v = Zmatrix.get d i i in
      if B.is_zero v then List.rev acc else collect (i + 1) (B.abs v :: acc)
    end
  in
  collect 0 []

let rank m = List.length (invariant_factors m)

let det_abs m =
  if not (Zmatrix.is_square m) then invalid_arg "Smith.det_abs: not square";
  let facs = invariant_factors m in
  if List.length facs < Zmatrix.rows m then B.zero
  else List.fold_left B.mul B.one facs

let is_singular m =
  if not (Zmatrix.is_square m) then invalid_arg "Smith.is_singular";
  rank m < Zmatrix.rows m

let divisibility_chain_ok factors =
  let rec go = function
    | a :: (b :: _ as rest) -> B.is_zero (B.rem b a) && go rest
    | [ _ ] | [] -> true
  in
  List.for_all (fun d -> B.sign d > 0) factors && go factors
