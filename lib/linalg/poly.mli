(** Univariate polynomials over ℚ, with Sturm-sequence real-root
    counting.

    The exact-SVD story of Corollary 1.2(d) needs more than "how many
    singular values are zero": Sturm's theorem counts the real roots of
    charpoly(MᵀM) in any interval *exactly*, which localizes singular
    values without ever leaving ℚ.  The polynomial toolkit is generic
    and self-contained (arithmetic, division, gcd, squarefree part,
    evaluation, derivative).

    Representation: coefficient array, lowest degree first, normalized
    so the leading coefficient is nonzero ([zero] is the empty
    array). *)

type q = Commx_bigint.Rational.t
type t

val zero : t
val one : t
val x : t

val of_coeffs : q array -> t
(** Trailing zero (highest-degree) coefficients are stripped. *)

val of_int_coeffs : int array -> t

val coeffs : t -> q array
(** Canonical coefficients (a copy). *)

val degree : t -> int
(** [-1] for the zero polynomial. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val leading : t -> q
(** @raise Invalid_argument on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : q -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division. @raise Division_by_zero. *)

val rem : t -> t -> t

val gcd : t -> t -> t
(** Monic gcd. *)

val derivative : t -> t

val eval : t -> q -> q

val squarefree : t -> t
(** [p / gcd(p, p')] — same roots, all simple. *)

val sturm_chain : t -> t list
(** The Sturm sequence of the squarefree part. *)

val count_roots_in : t -> lo:q -> hi:q -> int
(** Number of *distinct* real roots in the half-open interval
    [(lo, hi]] by Sturm's theorem.  Requires [lo < hi]. *)

val count_positive_roots : t -> int
(** Distinct real roots in (0, B] where B is a Cauchy-style root bound
    computed from the coefficients. *)

val cauchy_root_bound : t -> q
(** All real roots lie in [\[-B, B\]]. *)

val pp : Format.formatter -> t -> unit

(** {1 The Corollary 1.2(d) application} *)

val distinct_singular_value_count : Zmatrix.t -> int
(** The number of *distinct nonzero* singular values of an integer
    matrix, exactly: distinct positive roots of charpoly(MᵀM). *)

val singular_values_in :
  Zmatrix.t -> lo:q -> hi:q -> int
(** Distinct singular values σ with lo < σ² <= hi (squared interval —
    exact, no square roots needed). *)
