(** Characteristic polynomials, exactly (Faddeev–LeVerrier).

    [charpoly m] returns the monic characteristic polynomial
    [det(xI − M)] of a rational matrix as its coefficient array
    [c.(0) + c.(1) x + ... + c.(n) x^n] with [c.(n) = 1].

    This is the exact route to the *singular value structure* of
    Corollary 1.2(d): the singular values of M are the square roots of
    the eigenvalues of MᵀM, so the number of **zero** singular values —
    the part of the SVD that decides singularity and rank — equals the
    multiplicity of the root 0 of charpoly(MᵀM), i.e. the number of
    trailing zero coefficients.  Unlike the floating Jacobi SVD in
    {!Svd}, this decision is exact. *)

type q = Commx_bigint.Rational.t

val charpoly : Qmatrix.t -> q array
(** Coefficients lowest-degree first, length n+1, monic.
    @raise Invalid_argument for non-square input. *)

val charpoly_z : Zmatrix.t -> Commx_bigint.Bigint.t array
(** Same for an integer matrix; coefficients are provably integers
    (checked, a failure would be a bug). *)

val det : Qmatrix.t -> q
(** [(-1)^n * c.(0)] — determinant recovered from the polynomial. *)

val trace : Qmatrix.t -> q
(** [-c.(n-1)] for n >= 1. *)

val eval : q array -> q -> q
(** Horner evaluation. *)

val zero_root_multiplicity : q array -> int
(** Number of trailing zero coefficients = multiplicity of the root 0. *)

val gram_charpoly : Zmatrix.t -> Commx_bigint.Bigint.t array
(** charpoly(MᵀM) for an integer matrix — the singular values squared
    are its roots. *)

val zero_singular_values : Zmatrix.t -> int
(** Exact count of zero singular values of M: the multiplicity of 0 in
    {!gram_charpoly}.  Equals [n - rank M] (MᵀM is symmetric positive
    semidefinite, hence diagonalizable, so algebraic = geometric
    multiplicity). *)
