(** Exact LUP decomposition over ℚ.

    Corollary 1.2(e) of the paper states the Θ(k n²) communication
    bound for "computing the LUP decomposition of M", and notes it
    holds even when only the *nonzero structure* of the factors is
    required.  This module provides the decomposition itself (so the
    reduction can be exercised end-to-end) and the structure
    extraction. *)

type t = {
  l : Qmatrix.t;  (** unit lower triangular *)
  u : Qmatrix.t;  (** upper triangular (echelon for singular input) *)
  perm : int array;  (** row permutation: row [i] of [P·A] is row [perm.(i)] of [A] *)
}

val decompose : Qmatrix.t -> t
(** Partial-pivoting elimination.  Works for singular and rectangular
    (rows >= cols not required) square matrices; for rank-deficient
    input [u] simply has zero pivots.
    @raise Invalid_argument for non-square input. *)

val permutation_matrix : int array -> Qmatrix.t

val verify : Qmatrix.t -> t -> bool
(** [verify a d] checks [P·A = L·U], [L] unit lower triangular, [U]
    upper triangular. *)

val det : t -> Commx_bigint.Rational.t
(** Determinant recovered from the factors: sign(perm) * prod diag(U). *)

val nonzero_structure : Qmatrix.t -> Commx_util.Bitmat.t
(** Boolean support of a matrix — the object the weakened form of
    Corollary 1.2 speaks about. *)

val sign_of_permutation : int array -> int
