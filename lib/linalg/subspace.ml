module Q = Commx_bigint.Rational

type vec = Q.t array

type t = { ambient : int; rref_basis : Qmatrix.t }
(* Invariant: rref_basis is in RREF with no zero rows; its row count is
   the dimension. *)

let ambient_dim s = s.ambient
let dim s = Qmatrix.rows s.rref_basis

let canonicalize ambient rows_list =
  let nonzero = List.filter (fun r -> Array.exists (fun x -> not (Q.is_zero x)) r) rows_list in
  match nonzero with
  | [] -> { ambient; rref_basis = Qmatrix.zero 0 ambient }
  | rows_list ->
      let m = Qmatrix.of_rows rows_list in
      let r, rk, _, _ = Qmatrix.rref_full m in
      let basis = List.init rk (Qmatrix.row r) in
      { ambient; rref_basis = Qmatrix.of_rows basis }

let zero_space n =
  if n < 0 then invalid_arg "Subspace.zero_space";
  { ambient = n; rref_basis = Qmatrix.zero 0 n }

let full_space n =
  { ambient = n; rref_basis = Qmatrix.identity n }

let of_vectors n vs =
  List.iter
    (fun v -> if Array.length v <> n then invalid_arg "Subspace.of_vectors")
    vs;
  canonicalize n vs

let of_matrix_rows m = canonicalize (Qmatrix.cols m) (Qmatrix.to_rows m)

let of_matrix_columns m = of_matrix_rows (Qmatrix.transpose m)

let basis s = Qmatrix.to_rows s.rref_basis

let mem v s =
  if Array.length v <> s.ambient then invalid_arg "Subspace.mem";
  if Array.for_all Q.is_zero v then true
  else if dim s = 0 then false
  else begin
    (* v is in the row space iff appending it does not raise the rank. *)
    let stacked = Qmatrix.vcat s.rref_basis (Qmatrix.of_rows [ v ]) in
    Qmatrix.rank stacked = dim s
  end

let subset a b =
  a.ambient = b.ambient && List.for_all (fun v -> mem v b) (basis a)

let equal a b = a.ambient = b.ambient && dim a = dim b && subset a b

let add a b =
  if a.ambient <> b.ambient then invalid_arg "Subspace.add";
  canonicalize a.ambient (basis a @ basis b)

let intersect a b =
  if a.ambient <> b.ambient then invalid_arg "Subspace.intersect";
  let da = dim a and db = dim b in
  if da = 0 || db = 0 then zero_space a.ambient
  else begin
    (* Vectors in both spans: x^T A = y^T B for coefficient vectors x, y.
       Solve [A^T | -B^T] [x; y] = 0; intersection vectors are A^T x. *)
    let at = Qmatrix.transpose a.rref_basis (* ambient x da *) in
    let bt = Qmatrix.transpose b.rref_basis in
    let neg_bt = Qmatrix.neg bt in
    let stacked = Qmatrix.hcat at neg_bt (* ambient x (da+db) *) in
    let null = Qmatrix.nullspace stacked in
    let vectors =
      List.map
        (fun coeffs ->
          let x = Array.sub coeffs 0 da in
          Qmatrix.mul_vec at x)
        null
    in
    canonicalize a.ambient vectors
  end

let intersect_many = function
  | [] -> invalid_arg "Subspace.intersect_many: empty list"
  | s :: rest -> List.fold_left intersect s rest

let spans_everything s = dim s = s.ambient

let project s coords =
  Array.iter
    (fun c ->
      if c < 0 || c >= s.ambient then invalid_arg "Subspace.project")
    coords;
  let projected =
    List.map (fun v -> Array.map (fun c -> v.(c)) coords) (basis s)
  in
  canonicalize (Array.length coords) projected

let contains_columns s m =
  if Qmatrix.rows m <> s.ambient then invalid_arg "Subspace.contains_columns";
  let ok = ref true in
  for j = 0 to Qmatrix.cols m - 1 do
    if not (mem (Qmatrix.col m j) s) then ok := false
  done;
  !ok

let pp ppf s =
  Format.fprintf ppf "@[<v>subspace dim %d of Q^%d:@,%a@]" (dim s) s.ambient
    Qmatrix.pp s.rref_basis
