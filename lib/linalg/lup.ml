module Q = Commx_bigint.Rational

type t = { l : Qmatrix.t; u : Qmatrix.t; perm : int array }

let decompose a =
  if not (Qmatrix.is_square a) then invalid_arg "Lup.decompose: not square";
  let n = Qmatrix.rows a in
  let u = Qmatrix.copy a in
  let l = Qmatrix.identity n in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Pivot: first nonzero entry in column k at or below row k. *)
    let piv = ref (-1) in
    (try
       for i = k to n - 1 do
         if not (Q.is_zero (Qmatrix.get u i k)) then begin
           piv := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv >= 0 then begin
      if !piv <> k then begin
        Qmatrix.swap_rows u !piv k;
        let t = perm.(!piv) in
        perm.(!piv) <- perm.(k);
        perm.(k) <- t;
        (* Swap the already-computed part of L (columns < k). *)
        for j = 0 to k - 1 do
          let t = Qmatrix.get l !piv j in
          Qmatrix.set l !piv j (Qmatrix.get l k j);
          Qmatrix.set l k j t
        done
      end;
      let pval = Qmatrix.get u k k in
      for i = k + 1 to n - 1 do
        let f = Q.div (Qmatrix.get u i k) pval in
        if not (Q.is_zero f) then begin
          Qmatrix.set l i k f;
          for j = k to n - 1 do
            Qmatrix.set u i j
              (Q.sub (Qmatrix.get u i j) (Q.mul f (Qmatrix.get u k j)))
          done
        end
      done
    end
  done;
  { l; u; perm }

let permutation_matrix perm =
  let n = Array.length perm in
  Qmatrix.init n n (fun i j -> if perm.(i) = j then Q.one else Q.zero)

let sign_of_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  let sign = ref 1 in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      (* Walk the cycle containing i; a cycle of length L contributes
         (-1)^(L-1). *)
      let j = ref i and len = ref 0 in
      while not seen.(!j) do
        seen.(!j) <- true;
        j := perm.(!j);
        incr len
      done;
      if !len mod 2 = 0 then sign := - !sign
    end
  done;
  !sign

let is_unit_lower m =
  let n = Qmatrix.rows m in
  let ok = ref (Qmatrix.is_square m) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i = j then (if not (Q.equal (Qmatrix.get m i j) Q.one) then ok := false)
      else if j > i && not (Q.is_zero (Qmatrix.get m i j)) then ok := false
    done
  done;
  !ok

let is_upper m =
  let ok = ref true in
  for i = 0 to Qmatrix.rows m - 1 do
    for j = 0 to Qmatrix.cols m - 1 do
      if j < i && not (Q.is_zero (Qmatrix.get m i j)) then ok := false
    done
  done;
  !ok

let verify a d =
  let pa = Qmatrix.permute_rows a d.perm in
  Qmatrix.equal pa (Qmatrix.mul d.l d.u) && is_unit_lower d.l && is_upper d.u

let det d =
  let n = Qmatrix.rows d.u in
  let prod = ref Q.one in
  for i = 0 to n - 1 do
    prod := Q.mul !prod (Qmatrix.get d.u i i)
  done;
  if sign_of_permutation d.perm < 0 then Q.neg !prod else !prod

let nonzero_structure m =
  Commx_util.Bitmat.init (Qmatrix.rows m) (Qmatrix.cols m) (fun i j ->
      not (Q.is_zero (Qmatrix.get m i j)))
