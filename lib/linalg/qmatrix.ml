(** Matrices over the rationals — the workhorse for every exact
    decision in the library (rank, singularity, solvability, span
    membership).  This is [Matrix.Make_field] instantiated at ℚ plus
    conversions from integer data. *)

include Matrix.Make_field (Ring.Q)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational

let of_int_matrix rows cols f = init rows cols (fun i j -> Q.of_int (f i j))

let of_int_array2 a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  if Array.exists (fun r -> Array.length r <> cols) a then
    invalid_arg "Qmatrix.of_int_array2: ragged";
  init rows cols (fun i j -> Q.of_int a.(i).(j))

let of_bigint_fn rows cols f = init rows cols (fun i j -> Q.of_bigint (f i j))

(** Clear denominators: returns [(z, d)] where [z i j] are bigints,
    [d > 0], and the input equals [z / d] entrywise. *)
let to_common_denominator m =
  let d = ref B.one in
  for i = 0 to rows m - 1 do
    for j = 0 to cols m - 1 do
      d := B.lcm !d (Q.den (get m i j))
    done
  done;
  let d = if B.is_zero !d then B.one else B.abs !d in
  let z =
    init (rows m) (cols m) (fun i j ->
        let q = get m i j in
        Q.of_bigint (B.mul (Q.num q) (B.div d (Q.den q))))
  in
  (z, d)
