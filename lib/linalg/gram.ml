module Q = Commx_bigint.Rational

type t = { q : Qmatrix.t; r : Qmatrix.t }

let dot_cols m j1 j2 =
  let acc = ref Q.zero in
  for i = 0 to Qmatrix.rows m - 1 do
    acc := Q.add !acc (Q.mul (Qmatrix.get m i j1) (Qmatrix.get m i j2))
  done;
  !acc

let col_is_zero m j =
  let z = ref true in
  for i = 0 to Qmatrix.rows m - 1 do
    if not (Q.is_zero (Qmatrix.get m i j)) then z := false
  done;
  !z

let decompose a =
  let m = Qmatrix.rows a and n = Qmatrix.cols a in
  let q = Qmatrix.copy a in
  let r = Qmatrix.identity n in
  for j = 0 to n - 1 do
    (* Subtract projections of column j onto the previous orthogonal
       columns; record the coefficients in R. *)
    for i = 0 to j - 1 do
      let qq = dot_cols q i i in
      if not (Q.is_zero qq) then begin
        let coeff = Q.div (dot_cols q i j) qq in
        Qmatrix.set r i j coeff;
        if not (Q.is_zero coeff) then
          for row = 0 to m - 1 do
            Qmatrix.set q row j
              (Q.sub (Qmatrix.get q row j) (Q.mul coeff (Qmatrix.get q row i)))
          done
      end
    done
  done;
  { q; r }

let columns_orthogonal m =
  let n = Qmatrix.cols m in
  let ok = ref true in
  for j1 = 0 to n - 1 do
    for j2 = j1 + 1 to n - 1 do
      if
        (not (col_is_zero m j1))
        && (not (col_is_zero m j2))
        && not (Q.is_zero (dot_cols m j1 j2))
      then ok := false
    done
  done;
  !ok

let is_unit_upper r =
  let n = Qmatrix.rows r in
  let ok = ref (Qmatrix.is_square r) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i = j then begin
        if not (Q.equal (Qmatrix.get r i j) Q.one) then ok := false
      end
      else if j < i && not (Q.is_zero (Qmatrix.get r i j)) then ok := false
    done
  done;
  !ok

let verify a d =
  Qmatrix.equal a (Qmatrix.mul d.q d.r)
  && columns_orthogonal d.q && is_unit_upper d.r

let rank_from_q d =
  let n = Qmatrix.cols d.q in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if not (col_is_zero d.q j) then incr count
  done;
  !count
