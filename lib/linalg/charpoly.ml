module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational

type q = Q.t

(* Faddeev-LeVerrier: with M_1 = M, c_{n-1} = -tr(M_1), and
     M_k = M (M_{k-1} + c_{n-k+1} I),  c_{n-k} = -tr(M_k) / k,
   the c's are the coefficients of det(xI - M). *)
let charpoly m =
  if not (Qmatrix.is_square m) then invalid_arg "Charpoly.charpoly";
  let n = Qmatrix.rows m in
  let c = Array.make (n + 1) Q.zero in
  c.(n) <- Q.one;
  if n > 0 then begin
    let acc = ref (Qmatrix.copy m) in
    for k = 1 to n do
      if k > 1 then begin
        (* acc <- M (acc + c_{n-k+1} I) *)
        let shifted =
          Qmatrix.add !acc (Qmatrix.scale c.(n - k + 1) (Qmatrix.identity n))
        in
        acc := Qmatrix.mul m shifted
      end;
      let tr = Qmatrix.trace !acc in
      c.(n - k) <- Q.neg (Q.div tr (Q.of_int k))
    done
  end;
  c

let charpoly_z m =
  let c = charpoly (Zmatrix.to_qmatrix m) in
  Array.map
    (fun x ->
      if Q.is_integer x then Q.to_bigint x
      else failwith "Charpoly.charpoly_z: non-integer coefficient (bug)")
    c

let det m =
  let c = charpoly m in
  let n = Array.length c - 1 in
  if n mod 2 = 0 then c.(0) else Q.neg c.(0)

let trace m =
  let c = charpoly m in
  let n = Array.length c - 1 in
  if n = 0 then Q.zero else Q.neg c.(n - 1)

let eval c x =
  let acc = ref Q.zero in
  for i = Array.length c - 1 downto 0 do
    acc := Q.add (Q.mul !acc x) c.(i)
  done;
  !acc

let zero_root_multiplicity c =
  let rec go i = if i < Array.length c && Q.is_zero c.(i) then go (i + 1) else i in
  go 0

let gram_charpoly m =
  let mt = Zmatrix.transpose m in
  let gram = Zmatrix.mul mt m in
  charpoly_z gram

let zero_singular_values m =
  let c = gram_charpoly m in
  let rec go i =
    if i < Array.length c && B.is_zero c.(i) then go (i + 1) else i
  in
  go 0
