module Bounds = Commx_core.Bounds

type design = {
  name : string;
  layout : Layout.t;
  time_estimate : float;
}

let evaluate ~info_bits layout ~name =
  (* T >= I / crossing for every nearly balanced cut; the cheapest such
     cut binds. *)
  let cut = Layout.min_crossing_balanced_cut layout in
  let cut_limited = info_bits /. float_of_int cut.Layout.crossing in
  let time = Float.max 1.0 cut_limited in
  { name; layout; time_estimate = time }

let at2 d =
  float_of_int (Layout.area d.layout) *. (d.time_estimate ** 2.0)

let designs_for ~n ~k =
  let bits = k * (2 * n) * (2 * n) in
  let info = Bounds.info_bits ~n ~k in
  let square =
    evaluate ~info_bits:info (Layout.square_reader ~bits) ~name:"square"
  in
  let strips =
    List.filter_map
      (fun rows ->
        if rows < int_of_float (sqrt (float_of_int bits)) && rows >= 1 then
          Some
            (evaluate ~info_bits:info
               (Layout.strip_reader ~bits ~rows)
               ~name:(Printf.sprintf "strip-h%d" rows))
        else None)
      [ 1; 2; 4; 8; 16; 32 ]
  in
  square :: strips

type bound_row = {
  bn : int;
  bk : int;
  info : float;
  at2_bound : float;
  our_t : float;
  cm_t : float;
  our_at : float;
  cm_at : float;
}

let bound_row ~n ~k =
  let info = Bounds.info_bits ~n ~k in
  {
    bn = n;
    bk = k;
    info;
    at2_bound = Bounds.at2_lower ~info_bits:info;
    our_t = Bounds.our_time_lower ~n ~k;
    cm_t = Bounds.chazelle_monier_time_lower ~n;
    our_at = Bounds.our_at_lower ~n ~k;
    cm_at = Bounds.chazelle_monier_at_lower ~n;
  }
