(** Thompson's grid model of VLSI chips.

    A chip is an [h x w] grid of unit cells; wires run along grid
    edges; some cells are *input ports*, each reading one input bit
    (multiple reads of the same bit are allowed but each port pays
    area).  The area is [h·w].  Thompson's observation (1979): some
    vertical or horizontal grid line splits the ports nearly evenly
    while cutting at most [min(h, w) <= sqrt(A)] wires; if the function
    needs [I] bits exchanged across every even split, the computation
    time satisfies [T >= I / cut] — hence [A T² = Ω(I²)]. *)

type t

val make : h:int -> w:int -> t
(** Empty grid. *)

val h : t -> int
val w : t -> int
val area : t -> int

val place_port : t -> row:int -> col:int -> bit:int -> unit
(** Mark the cell as a port for input bit [bit].  A cell holds at most
    one port. @raise Invalid_argument on occupied cells. *)

val ports : t -> (int * int * int) list
(** [(row, col, bit)] for every port. *)

val port_count : t -> int

val square_reader : bits:int -> t
(** A near-square chip that reads [bits] input bits, one per cell, in
    row-major order — the minimum-area design (A = Θ(I)). *)

val strip_reader : bits:int -> rows:int -> t
(** A [rows]-tall strip reading the bits column by column — the
    elongated family whose cuts are cheap ([rows] wires), trading time
    for area. *)

type cut = {
  vertical : bool;
  position : int;  (** cut between position-1 and position *)
  crossing : int;  (** wires severed: h for vertical cuts, w for horizontal *)
  left_ports : int;  (** ports on the low side *)
}

val sweep_cuts : t -> cut list
(** All grid-line cuts, both orientations. *)

val thompson_cut : t -> cut
(** The most balanced cut: minimizes |left - half| then crossing —
    Thompson's bisection witness.
    @raise Invalid_argument on a chip with no ports. *)

val min_crossing_balanced_cut : t -> cut
(** The cheapest *nearly balanced* cut: among cuts whose port split is
    within one grid line of even ([|left - half| <= max(h, w)], which
    the sweep argument guarantees non-vacuous), the one with minimum
    crossing.  This is the cut that binds the time lower bound: the
    protocol induced by ANY balanced cut must move the communication
    complexity across it, so [T >= I / crossing] for each, and the
    smallest crossing gives the strongest constraint.
    @raise Invalid_argument on a chip with no ports. *)

val bisection_width_exact : t -> parts:(int * int) -> int
(** Exact minimum edge cut separating two given port cells
    (via max-flow on the grid graph with unit edge capacities) — the
    substrate check that sweep cuts are within a constant of optimal on
    our layouts.  [parts] are port indices into {!ports}. *)
