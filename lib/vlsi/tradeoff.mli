(** Area–time tradeoff evaluation (Section 1's motivation).

    Communication complexity [I] forces, for any chip computing the
    function: [T >= I / cut] across every balanced cut, and Thompson's
    sweep guarantees a balanced cut of at most [min(h, w)] wires, so
    [A T² >= I²] and with [A >= I] also [A T^(2a) >= I^(1+a)].  This
    module evaluates concrete chip designs for singularity testing
    against those bounds and against the Chazelle–Monier figures
    quoted in the paper. *)

type design = {
  name : string;
  layout : Layout.t;
  time_estimate : float;
  (** cycles for the design to absorb its inputs and push the needed
      information across its own Thompson cut: max(ports, I / cut) *)
}

val evaluate : info_bits:float -> Layout.t -> name:string -> design
(** Attach the cut-limited time estimate to a layout. *)

val at2 : design -> float
(** [area * time²]. *)

val designs_for : n:int -> k:int -> design list
(** A family of chips reading the [k·(2n)²] input bits of a
    singularity instance, from square to extreme strips — the frontier
    that the AT² lower bound shapes. *)

type bound_row = {
  bn : int;
  bk : int;
  info : float;
  at2_bound : float;  (** Thompson/Theorem 1.1: I² *)
  our_t : float;  (** T = Ω(√k n) *)
  cm_t : float;  (** Chazelle–Monier T = Ω(n) *)
  our_at : float;  (** A T = Ω(k^(3/2) n³) *)
  cm_at : float;  (** Chazelle–Monier A T = Ω(n²) *)
}

val bound_row : n:int -> k:int -> bound_row
(** The comparison row of experiment E10. *)
