(* Dinic's algorithm with adjacency lists of edge indices and paired
   reverse edges at index lxor 1. *)

type edge = { dst : int; mutable cap : int }

type t = {
  n : int;
  mutable edges : edge array;
  mutable edge_count : int;
  adj : int list array;  (* per-vertex edge indices, built mutably *)
  mutable adj_built : int list array;
}

let create n =
  {
    n;
    edges = Array.make 16 { dst = 0; cap = 0 };
    edge_count = 0;
    adj = Array.make n [];
    adj_built = [||];
  }

let push g e =
  if g.edge_count = Array.length g.edges then begin
    let bigger = Array.make (2 * Array.length g.edges) e in
    Array.blit g.edges 0 bigger 0 g.edge_count;
    g.edges <- bigger
  end;
  g.edges.(g.edge_count) <- e;
  g.edge_count <- g.edge_count + 1

let add_edge g ~src ~dst ~cap =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n || cap < 0 then
    invalid_arg "Maxflow.add_edge";
  let idx = g.edge_count in
  push g { dst; cap };
  push g { dst = src; cap = 0 };
  g.adj.(src) <- idx :: g.adj.(src);
  g.adj.(dst) <- (idx + 1) :: g.adj.(dst)

let bfs_levels g ~source ~sink =
  let level = Array.make g.n (-1) in
  let queue = Queue.create () in
  level.(source) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun ei ->
        let e = g.edges.(ei) in
        if e.cap > 0 && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(v) + 1;
          Queue.push e.dst queue
        end)
      g.adj.(v)
  done;
  if level.(sink) < 0 then None else Some level

let max_flow g ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs_levels g ~source ~sink with
    | None -> continue := false
    | Some level ->
        (* Iterators over remaining edges per vertex (current-arc). *)
        let arcs = Array.map (fun l -> ref l) g.adj in
        let rec dfs v pushed =
          if v = sink then pushed
          else begin
            let sent = ref 0 in
            let rec try_arcs () =
              match !(arcs.(v)) with
              | [] -> ()
              | ei :: rest ->
                  let e = g.edges.(ei) in
                  if e.cap > 0 && level.(e.dst) = level.(v) + 1 then begin
                    let got = dfs e.dst (min pushed e.cap) in
                    if got > 0 then begin
                      e.cap <- e.cap - got;
                      g.edges.(ei lxor 1).cap <- g.edges.(ei lxor 1).cap + got;
                      sent := got
                    end
                    else begin
                      arcs.(v) := rest;
                      try_arcs ()
                    end
                  end
                  else begin
                    arcs.(v) := rest;
                    try_arcs ()
                  end
            in
            try_arcs ();
            !sent
          end
        in
        let rec pump () =
          let got = dfs source max_int in
          if got > 0 then begin
            total := !total + got;
            pump ()
          end
        in
        pump ()
  done;
  !total

let min_cut_side g ~source =
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun ei ->
        let e = g.edges.(ei) in
        if e.cap > 0 && not seen.(e.dst) then begin
          seen.(e.dst) <- true;
          Queue.push e.dst queue
        end)
      g.adj.(v)
  done;
  List.filter (fun v -> seen.(v)) (List.init g.n (fun v -> v))
