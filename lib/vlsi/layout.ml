type t = {
  h : int;
  w : int;
  cells : int option array array;  (* port bit index per cell *)
}

let make ~h ~w =
  if h <= 0 || w <= 0 then invalid_arg "Layout.make";
  { h; w; cells = Array.init h (fun _ -> Array.make w None) }

let h t = t.h
let w t = t.w
let area t = t.h * t.w

let place_port t ~row ~col ~bit =
  if row < 0 || row >= t.h || col < 0 || col >= t.w then
    invalid_arg "Layout.place_port: out of grid";
  match t.cells.(row).(col) with
  | Some _ -> invalid_arg "Layout.place_port: cell occupied"
  | None -> t.cells.(row).(col) <- Some bit

let ports t =
  let acc = ref [] in
  for row = t.h - 1 downto 0 do
    for col = t.w - 1 downto 0 do
      match t.cells.(row).(col) with
      | Some bit -> acc := (row, col, bit) :: !acc
      | None -> ()
    done
  done;
  !acc

let port_count t = List.length (ports t)

let square_reader ~bits =
  if bits <= 0 then invalid_arg "Layout.square_reader";
  let side = int_of_float (ceil (sqrt (float_of_int bits))) in
  let t = make ~h:side ~w:side in
  for b = 0 to bits - 1 do
    place_port t ~row:(b / side) ~col:(b mod side) ~bit:b
  done;
  t

let strip_reader ~bits ~rows =
  if bits <= 0 || rows <= 0 then invalid_arg "Layout.strip_reader";
  let cols = (bits + rows - 1) / rows in
  let t = make ~h:rows ~w:cols in
  for b = 0 to bits - 1 do
    place_port t ~row:(b mod rows) ~col:(b / rows) ~bit:b
  done;
  t

type cut = {
  vertical : bool;
  position : int;
  crossing : int;
  left_ports : int;
}

let sweep_cuts t =
  let vertical =
    List.init (t.w - 1) (fun c ->
        let pos = c + 1 in
        let left = ref 0 in
        for row = 0 to t.h - 1 do
          for col = 0 to pos - 1 do
            if t.cells.(row).(col) <> None then incr left
          done
        done;
        { vertical = true; position = pos; crossing = t.h; left_ports = !left })
  in
  let horizontal =
    List.init (t.h - 1) (fun r ->
        let pos = r + 1 in
        let left = ref 0 in
        for row = 0 to pos - 1 do
          for col = 0 to t.w - 1 do
            if t.cells.(row).(col) <> None then incr left
          done
        done;
        { vertical = false; position = pos; crossing = t.w; left_ports = !left })
  in
  vertical @ horizontal

let thompson_cut t =
  let n = port_count t in
  if n = 0 then invalid_arg "Layout.thompson_cut: no ports";
  let half = n / 2 in
  let score c = (abs (c.left_ports - half), c.crossing) in
  match sweep_cuts t with
  | [] -> invalid_arg "Layout.thompson_cut: 1x1 grid"
  | first :: rest ->
      List.fold_left
        (fun best c -> if score c < score best then c else best)
        first rest

let min_crossing_balanced_cut t =
  let n = port_count t in
  if n = 0 then invalid_arg "Layout.min_crossing_balanced_cut: no ports";
  let half = n / 2 in
  let tolerance = Stdlib.max t.h t.w in
  let balanced =
    List.filter (fun c -> abs (c.left_ports - half) <= tolerance) (sweep_cuts t)
  in
  match balanced with
  | [] -> thompson_cut t
  | first :: rest ->
      List.fold_left
        (fun best c -> if c.crossing < best.crossing then c else best)
        first rest

let vertex_id t row col = (row * t.w) + col

let bisection_width_exact t ~parts =
  let ps = Array.of_list (ports t) in
  let i1, i2 = parts in
  if i1 < 0 || i2 < 0 || i1 >= Array.length ps || i2 >= Array.length ps then
    invalid_arg "Layout.bisection_width_exact: bad port indices";
  let r1, c1, _ = ps.(i1) and r2, c2, _ = ps.(i2) in
  let g = Maxflow.create (t.h * t.w) in
  for row = 0 to t.h - 1 do
    for col = 0 to t.w - 1 do
      let v = vertex_id t row col in
      if col + 1 < t.w then begin
        let u = vertex_id t row (col + 1) in
        Maxflow.add_edge g ~src:v ~dst:u ~cap:1;
        Maxflow.add_edge g ~src:u ~dst:v ~cap:1
      end;
      if row + 1 < t.h then begin
        let u = vertex_id t (row + 1) col in
        Maxflow.add_edge g ~src:v ~dst:u ~cap:1;
        Maxflow.add_edge g ~src:u ~dst:v ~cap:1
      end
    done
  done;
  Maxflow.max_flow g ~source:(vertex_id t r1 c1) ~sink:(vertex_id t r2 c2)
