(** Maximum flow (Dinic's algorithm) on integer-capacity digraphs.

    The min-cut engine behind the Thompson-model analysis: the
    bisection width of a chip graph — the smallest number of wires
    whose removal splits the input ports evenly — is a max-flow
    quantity, and it is what bounds the information that can cross
    between the two halves per unit time. *)

type t

val create : int -> t
(** [create n]: empty graph on vertices [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Directed edge; parallel edges allowed.  For an undirected edge add
    both directions with the same capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Runs Dinic.  The graph's flow state is consumed: create a fresh
    graph per query. *)

val min_cut_side : t -> source:int -> int list
(** After {!max_flow}, the vertices reachable from [source] in the
    residual graph — the source side of a minimum cut. *)
