let word_limit = 1 lsl 31

(* Deterministic Miller-Rabin witnesses valid for all n < 2^64. *)
let witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 0 || n >= word_limit then invalid_arg "Primes.is_prime: out of range";
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    (* Write n - 1 = d * 2^s with d odd. *)
    let s = ref 0 and d = ref (n - 1) in
    while !d land 1 = 0 do
      incr s;
      d := !d lsr 1
    done;
    let m = Modarith.Word.modulus n in
    let witness a =
      (* true when a proves n composite *)
      let a = a mod n in
      if a = 0 then false
      else begin
        let x = ref (Modarith.Word.pow m a !d) in
        if !x = 1 || !x = n - 1 then false
        else begin
          let proved = ref true in
          (try
             for _ = 1 to !s - 1 do
               x := Modarith.Word.mul m !x !x;
               if !x = n - 1 then begin
                 proved := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !proved
        end
      end
    in
    not (List.exists witness witnesses)
  end

let next_prime n =
  let start = max 2 (n + 1) in
  let rec go c =
    if c >= word_limit then invalid_arg "Primes.next_prime: exceeded 2^31";
    if is_prime c then c else go (c + 1)
  in
  go start

let nth_prime_below i bound =
  if i < 0 || bound <= 2 then raise Not_found;
  let rec go c remaining =
    if c < 2 then raise Not_found
    else if is_prime c then
      if remaining = 0 then c else go (c - 1) (remaining - 1)
    else go (c - 1) remaining
  in
  go (bound - 1) i

let random_prime g ~bits =
  if bits < 2 || bits > 30 then
    invalid_arg "Primes.random_prime: need 2 <= bits <= 30";
  let lo = 1 lsl (bits - 1) in
  let rec draw () =
    let c = lo lor Commx_util.Prng.int g lo lor 1 in
    (* force top and bottom bits; bits=2 gives 3, which is prime *)
    if is_prime c then c else draw ()
  in
  if bits = 2 then if Commx_util.Prng.bool g then 2 else 3 else draw ()

let primes_below bound =
  if bound > 10_000_000 then invalid_arg "Primes.primes_below: bound too large";
  if bound <= 2 then []
  else begin
    let sieve = Bytes.make bound '\001' in
    Bytes.set sieve 0 '\000';
    Bytes.set sieve 1 '\000';
    let i = ref 2 in
    while !i * !i < bound do
      if Bytes.get sieve !i = '\001' then begin
        let j = ref (!i * !i) in
        while !j < bound do
          Bytes.set sieve !j '\000';
          j := !j + !i
        done
      end;
      incr i
    done;
    let acc = ref [] in
    for p = bound - 1 downto 2 do
      if Bytes.get sieve p = '\001' then acc := p :: !acc
    done;
    !acc
  end

let primorial_bits b =
  (* Rosser: pi(x) > x / ln x for x >= 17.  Primes with exactly b bits
     number at least 2^(b-1)/ln(2^b) - 2^(b-2)/... ; we use the crude
     but valid-for-our-range estimate 2^(b-2) / (b ln 2). *)
  let x = Float.pow 2.0 (float_of_int (b - 2)) in
  x /. (float_of_int b *. log 2.0)

let fingerprint_prime_bits ~n ~k ~epsilon =
  if n <= 0 || k <= 0 || epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Primes.fingerprint_prime_bits";
  (* A nonzero determinant of a 2n x 2n matrix with k-bit entries has,
     by Hadamard, |det| <= (2n)^n * 2^(2nk)... more precisely
     |det| <= prod of row norms <= (sqrt(2n) * 2^k)^(2n), so
     log2 |det| <= 2n * (k + 0.5 * log2 (2n)).  A b-bit prime divides
     it only if it is one of at most log2|det| / (b-1) prime factors;
     with N_b >= primorial_bits b primes available the error is at most
     (log2|det| / (b-1)) / N_b.  Find the smallest b making that
     <= epsilon. *)
  let d = float_of_int n in
  let log2_det = 2.0 *. d *. (float_of_int k +. (0.5 *. log (2.0 *. d) /. log 2.0)) in
  let rec find b =
    if b >= 30 then 30
    else begin
      let err = log2_det /. float_of_int (b - 1) /. primorial_bits b in
      if err <= epsilon then b else find (b + 1)
    end
  in
  find 3
