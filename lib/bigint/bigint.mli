(** Arbitrary-precision signed integers.

    The container for this reproduction does not ship zarith, and the
    paper's constructions are meaningless in fixed precision (the hard
    instances contain powers of [q = 2^k - 1] up to [q^(n-1)], and exact
    determinants of those matrices overflow any machine word almost
    immediately), so this module implements bignums from scratch.

    Representation: sign-magnitude; the magnitude is a little-endian
    array of base-2^31 limbs with no leading zero limb.  Multiplication
    is schoolbook with a Karatsuba layer above {!karatsuba_threshold}
    limbs; division is Knuth's Algorithm D.  All operations are purely
    functional. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t
val two : t

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit a native [int]. *)

val to_int_opt : t -> int option
val fits_int : t -> bool

val of_string : string -> t
(** Decimal, with optional leading ['-'] or ['+'] and embedded ['_']
    separators.  @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, ["-"]-prefixed when negative. *)

val of_string_opt : string -> t option

(** {1 Queries} *)

val sign : t -> int
(** -1, 0 or 1. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val bit_length : t -> int
(** Bits in the magnitude; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool
(** Bit [i] of the magnitude (two's complement is not modelled). *)

val is_even : t -> bool
val is_odd : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val add_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division (quotient rounded toward zero, remainder with
    the dividend's sign), as in OCaml's [/] and [mod].
    @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder always in [\[0, |divisor|)]. *)

val erem : t -> t -> t

val rem_int : t -> int -> int
(** [rem_int x m] is the Euclidean remainder of [x] modulo [m], in
    [\[0, m)] — equal to [to_int (erem x (of_int m))] but computed
    limb-by-limb with zero allocation.  This is the entry point of the
    batched determinant filter, which reduces every matrix entry mod a
    word prime before deciding whether an exact bignum elimination is
    needed at all.  Requires [1 < m < 2^31] (one limb).
    @raise Invalid_argument outside that range. *)

(** Arena of reusable scratch buffers for batch kernels.

    The arithmetic in this module is purely functional and allocates
    per call; that is the right default, but a sweep over thousands of
    matrices (the E6/E7 determinant experiments, the load bench's
    singularity mix) spends a measurable fraction of its time in the
    allocator.  An arena lets such a sweep check an [int array]
    workspace out, fill it with word-size residues via {!rem_int},
    and hand it back — the steady state allocates nothing.  Arenas are
    not thread-safe; give each domain its own. *)
module Arena : sig
  type t

  val create : unit -> t

  val alloc : t -> int -> int array
  (** [alloc a n] returns a buffer of length [>= n] with unspecified
      contents — a previously {!release}d buffer when one is large
      enough, a fresh one otherwise.  Use only the first [n] cells. *)

  val release : t -> int array -> unit
  (** Return a buffer to the arena for reuse.  The caller must not
      touch it afterwards. *)

  val stats : t -> int * int
  (** [(fresh, reused)] allocation counters — the reuse ratio is the
      whole point, so the benches assert on it. *)
end

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative [e]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (floor for negatives is NOT the
    semantics: [shift_right x n] is [x / 2^n] truncated toward zero). *)

val isqrt : t -> t
(** Integer square root: the largest [s] with [s*s <= x] (Newton's
    method).  @raise Invalid_argument on negative input. *)

val isqrt_ceil : t -> t
(** Smallest [s] with [s*s >= x]. *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val gcdext : t -> t -> t * t * t
(** [gcdext a b = (g, x, y)] with [g = gcd a b >= 0] and
    [a*x + b*y = g]. *)

val lcm : t -> t -> t

(** {1 Infix operators}

    Deliberately distinct from the stdlib's integer operators so both
    can be used in one scope. *)

val ( +! ) : t -> t -> t
val ( -! ) : t -> t -> t
val ( *! ) : t -> t -> t
val ( /! ) : t -> t -> t
val ( %! ) : t -> t -> t
val ( =! ) : t -> t -> bool
val ( <! ) : t -> t -> bool
val ( <=! ) : t -> t -> bool
val ( >! ) : t -> t -> bool
val ( >=! ) : t -> t -> bool

(** {1 Randomness and misc} *)

val random_bits : Commx_util.Prng.t -> int -> t
(** Uniform in [\[0, 2^bits)]. *)

val random_below : Commx_util.Prng.t -> t -> t
(** Uniform in [\[0, bound)]; [bound] must be positive. *)

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit

val karatsuba_threshold : int
(** Limb count above which multiplication switches to Karatsuba
    (exposed for the ablation bench). *)

val mul_schoolbook : t -> t -> t
(** Forced schoolbook multiplication, for cross-checks and the
    Karatsuba ablation bench. *)
