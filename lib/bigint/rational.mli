(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly
    positive and coprime to the numerator; zero is [0/1].  Rational
    arithmetic is what makes the exact linear-algebra layer (Gaussian
    elimination over ℚ, LUP, span membership) possible, which in turn
    is what lets us *decide* singularity exactly — the core predicate
    of the paper. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den], reduced to canonical form.
    @raise Division_by_zero when [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Canonical numerator / denominator ([den] > 0). *)

val is_zero : t -> bool
val is_integer : t -> bool
val sign : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val ( +/ ) : t -> t -> t
val ( -/ ) : t -> t -> t
val ( */ ) : t -> t -> t
val ( // ) : t -> t -> t
val ( =/ ) : t -> t -> bool
val ( </ ) : t -> t -> bool
val ( <=/ ) : t -> t -> bool

val to_bigint : t -> Bigint.t
(** @raise Failure when not an integer. *)

val to_float : t -> float
(** Approximate conversion (used only for display and for the floating
    SVD substrate, never for decisions). *)

val to_string : t -> string
(** ["p/q"], or just ["p"] for integers. *)

val of_string : string -> t
(** Accepts ["p"], ["p/q"], decimal integers as for
    {!Bigint.of_string}. *)

val pp : Format.formatter -> t -> unit
