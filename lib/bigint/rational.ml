type t = { num : Bigint.t; den : Bigint.t }
(* Invariant: den > 0, gcd(|num|, den) = 1, zero is 0/1. *)

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let num x = x.num
let den x = x.den

let is_zero x = Bigint.is_zero x.num
let is_integer x = Bigint.is_one x.den
let sign x = Bigint.sign x.num

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den
     (denominators positive). *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let hash x = Hashtbl.hash (Bigint.hash x.num, Bigint.hash x.den)

let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

let inv x =
  if is_zero x then raise Division_by_zero;
  if Bigint.sign x.num < 0 then
    { num = Bigint.neg x.den; den = Bigint.neg x.num }
  else { num = x.den; den = x.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let div a b = mul a (inv b)

let ( +/ ) = add
let ( -/ ) = sub
let ( */ ) = mul
let ( // ) = div
let ( =/ ) = equal
let ( </ ) a b = compare a b < 0
let ( <=/ ) a b = compare a b <= 0

let to_bigint x =
  if is_integer x then x.num else failwith "Rational.to_bigint: not an integer"

let to_float x =
  (* Scale so both parts fit a float's mantissa reasonably; adequate
     for display purposes. *)
  let bl = Stdlib.max (Bigint.bit_length x.num) (Bigint.bit_length x.den) in
  let shift = Stdlib.max 0 (bl - 52) in
  let n = Bigint.shift_right x.num shift in
  let d = Bigint.shift_right x.den shift in
  if Bigint.is_zero d then
    (* Denominator underflowed the shift: value is huge. *)
    float_of_string (Bigint.to_string x.num) /. float_of_string (Bigint.to_string x.den)
  else
    float_of_string (Bigint.to_string n) /. float_of_string (Bigint.to_string d)

let to_string x =
  if is_integer x then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
      let n = String.sub s 0 i in
      let d = String.sub s (i + 1) (String.length s - i - 1) in
      make (Bigint.of_string n) (Bigint.of_string d)

let pp ppf x = Format.pp_print_string ppf (to_string x)
