module Word = struct
  type modulus = int

  let word_limit = 1 lsl 31

  let modulus m =
    if m < 2 || m >= word_limit then
      invalid_arg "Modarith.Word.modulus: need 2 <= m < 2^31";
    m

  let to_int m = m

  let reduce m x =
    let r = x mod m in
    if r < 0 then r + m else r

  let reduce_big m x = Bigint.to_int (Bigint.erem x (Bigint.of_int m))

  let add m a b =
    let s = a + b in
    if s >= m then s - m else s

  let sub m a b =
    let d = a - b in
    if d < 0 then d + m else d

  (* a, b < 2^31 so a*b < 2^62 fits a native int. *)
  let mul m a b = a * b mod m

  let pow m b e =
    if e < 0 then invalid_arg "Modarith.Word.pow: negative exponent";
    let rec go acc b e =
      if e = 0 then acc
      else go (if e land 1 = 1 then mul m acc b else acc) (mul m b b) (e lsr 1)
    in
    go 1 (reduce m b) e

  let inv m x =
    (* Extended Euclid on native ints. *)
    let rec go r0 t0 r1 t1 =
      if r1 = 0 then (r0, t0) else go r1 t1 (r0 mod r1) (t0 - (r0 / r1 * t1))
    in
    let x = reduce m x in
    let g, t = go m 0 x 1 in
    if g <> 1 then raise Division_by_zero;
    reduce m t

  let neg m x = if x = 0 then 0 else m - reduce m x
end

let add ~m a b = Bigint.erem (Bigint.add a b) m
let sub ~m a b = Bigint.erem (Bigint.sub a b) m
let mul ~m a b = Bigint.erem (Bigint.mul (Bigint.erem a m) (Bigint.erem b m)) m

let pow ~m b e =
  if Bigint.sign e < 0 then invalid_arg "Modarith.pow: negative exponent";
  let b = ref (Bigint.erem b m) in
  let e = ref e in
  let acc = ref (Bigint.erem Bigint.one m) in
  while not (Bigint.is_zero !e) do
    if Bigint.is_odd !e then acc := mul ~m !acc !b;
    b := mul ~m !b !b;
    e := Bigint.shift_right !e 1
  done;
  !acc

let inv ~m x =
  let g, s, _ = Bigint.gcdext (Bigint.erem x m) m in
  if not (Bigint.is_one g) then raise Division_by_zero;
  Bigint.erem s m

let crt pairs =
  match pairs with
  | [] -> invalid_arg "Modarith.crt: empty system"
  | (r0, m0) :: rest ->
      let combine (r, m) (r', m') =
        (* Find x = r (mod m), x = r' (mod m'). *)
        let g, s, _ = Bigint.gcdext m m' in
        if not (Bigint.is_one g) then
          invalid_arg "Modarith.crt: moduli not coprime";
        let diff = Bigint.sub r' r in
        let t = Bigint.erem (Bigint.mul diff s) m' in
        let x = Bigint.add r (Bigint.mul m t) in
        let mm = Bigint.mul m m' in
        (Bigint.erem x mm, mm)
      in
      List.fold_left combine (Bigint.erem r0 m0, m0) rest
