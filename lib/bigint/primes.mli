(** Primality testing and prime generation for word-size integers.

    The randomized singularity protocol needs a *shared random prime*
    of Θ(max(log n, log k) + log 1/ε) bits; the CRT determinant needs a
    supply of large word-size primes.  Every prime this module touches
    is below 2^31, so {!Modarith.Word} arithmetic applies and the
    Miller–Rabin test below is fully deterministic (the witness set
    {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is exact for all
    64-bit integers, hence a fortiori here). *)

val is_prime : int -> bool
(** Deterministic primality for [0 <= n < 2^31]. *)

val next_prime : int -> int
(** Smallest prime strictly greater than the argument.
    @raise Invalid_argument when the result would reach 2^31. *)

val nth_prime_below : int -> int -> int
(** [nth_prime_below i bound]: the [i]-th (0-based) prime counting
    *down* from [bound - 1].  Used to pick fixed CRT prime ladders.
    @raise Not_found if fewer than [i+1] primes exist below [bound]. *)

val random_prime : Commx_util.Prng.t -> bits:int -> int
(** Uniformly random prime with exactly [bits] bits (top bit set),
    [2 <= bits <= 30], by rejection sampling. *)

val primes_below : int -> int list
(** Ascending list of all primes < bound (simple sieve; bound <= 10^7
    to keep memory sane). *)

val primorial_bits : int -> float
(** [primorial_bits b]: a lower bound on the number of distinct [b]-bit
    primes, from the prime number theorem with explicit Rosser-type
    constants — used to size the fingerprint prime so that the union
    bound over matrix entries gives error <= epsilon.  Returns the
    (floating) count estimate. *)

val fingerprint_prime_bits : n:int -> k:int -> epsilon:float -> int
(** Number of prime bits sufficient for the fingerprinting protocol on
    a 2n x 2n matrix of k-bit entries to err with probability at most
    [epsilon]: enough primes must exist that a random one divides the
    (nonzero) determinant with probability <= epsilon.  Derived from
    Hadamard's bound on |det| and the PNT estimate above; clamped to
    [\[3, 30\]]. *)
