(* Sign-magnitude bignums over base-2^31 limbs.

   The base is chosen so that a limb product plus two carries stays
   strictly within OCaml's 63-bit native-int range:
   (2^31-1)^2 + 2*(2^31-1) = 2^62 - 1 = max_int.  All magnitude-level
   helpers below operate on little-endian [int array]s with no leading
   zero limb ("normalized"), except where noted. *)

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers                                                   *)
(* ------------------------------------------------------------------ *)

let mag_zero : int array = [||]

let norm a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lo, hi = if la <= lb then (a, b) else (b, a) in
  let llo = Array.length lo and lhi = Array.length hi in
  let r = Array.make (lhi + 1) 0 in
  let carry = ref 0 in
  for i = 0 to llo - 1 do
    let s = lo.(i) + hi.(i) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  for i = llo to lhi - 1 do
    let s = hi.(i) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lhi) <- !carry;
  norm r

(* Requires a >= b (as magnitudes). *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  norm r

let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then mag_zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    norm r
  end

let karatsuba_threshold = 64

(* a * B^limbs where B = 2^31: prepend zero limbs. *)
let shift_limbs a limbs =
  let la = Array.length a in
  if la = 0 then mag_zero
  else begin
    let r = Array.make (la + limbs) 0 in
    Array.blit a 0 r limbs la;
    r
  end

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then mag_zero
  else if Stdlib.min la lb < karatsuba_threshold then mul_mag_school a b
  else begin
    (* Karatsuba: split both operands at h limbs. *)
    let h = (Stdlib.max la lb + 1) / 2 in
    let lo x = norm (Array.sub x 0 (Stdlib.min h (Array.length x))) in
    let hi x =
      let lx = Array.length x in
      if lx <= h then mag_zero else Array.sub x h (lx - h)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let sa = add_mag a0 a1 and sb = add_mag b0 b1 in
    let z1 = sub_mag (sub_mag (mul_mag sa sb) z0) z2 in
    add_mag (add_mag (shift_limbs z2 (2 * h)) (shift_limbs z1 h)) z0
  end

(* Multiply magnitude by a small non-negative int < base. *)
let mul_mag_small a v =
  if v = 0 || Array.length a = 0 then mag_zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * v) + !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    norm r
  end

(* Add a small non-negative int < base to a magnitude. *)
let add_mag_small a v =
  if v = 0 then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    Array.blit a 0 r 0 la;
    let carry = ref v in
    let i = ref 0 in
    while !carry <> 0 && !i <= la do
      let t = r.(!i) + !carry in
      r.(!i) <- t land mask;
      carry := t lsr base_bits;
      incr i
    done;
    norm r
  end

let shift_left_mag a bits =
  if Array.length a = 0 || bits = 0 then a
  else begin
    let limbs = bits / base_bits and s = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if s = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl s) lor !carry in
        r.(i + limbs) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(la + limbs) <- !carry
    end;
    norm r
  end

let shift_right_mag a bits =
  if Array.length a = 0 || bits = 0 then a
  else begin
    let limbs = bits / base_bits and s = bits mod base_bits in
    let la = Array.length a in
    if limbs >= la then mag_zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if s = 0 then Array.blit a limbs r 0 lr
      else
        for i = 0 to lr - 1 do
          let low = a.(i + limbs) lsr s in
          let high =
            if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - s)) land mask
            else 0
          in
          r.(i) <- low lor high
        done;
      norm r
    end
  end

let bits_of_limb v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* Knuth Algorithm D.  Returns (quotient, remainder) of magnitudes. *)
let divmod_mag u v =
  let n = Array.length v in
  if n = 0 then raise Division_by_zero;
  if cmp_mag u v < 0 then (mag_zero, u)
  else if n = 1 then begin
    (* Single-limb divisor: straightforward long division. *)
    let d = v.(0) in
    let m = Array.length u in
    let q = Array.make m 0 in
    let r = ref 0 in
    for i = m - 1 downto 0 do
      let cur = (!r lsl base_bits) lor u.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (norm q, if !r = 0 then mag_zero else [| !r |])
  end
  else begin
    let m = Array.length u in
    (* Normalize: shift so the divisor's top limb has its high bit set. *)
    let s = base_bits - bits_of_limb v.(n - 1) in
    let vn = Array.make n 0 in
    for i = n - 1 downto 1 do
      vn.(i) <- ((v.(i) lsl s) lor (v.(i - 1) lsr (base_bits - s))) land mask
    done;
    vn.(0) <- (v.(0) lsl s) land mask;
    let un = Array.make (m + 1) 0 in
    un.(m) <- if s = 0 then 0 else u.(m - 1) lsr (base_bits - s);
    for i = m - 1 downto 1 do
      un.(i) <- ((u.(i) lsl s) lor (u.(i - 1) lsr (base_bits - s))) land mask
    done;
    un.(0) <- (u.(0) lsl s) land mask;
    let q = Array.make (m - n + 1) 0 in
    for j = m - n downto 0 do
      let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
      let qhat = ref (num / vn.(n - 1)) in
      let rhat = ref (num mod vn.(n - 1)) in
      let continue = ref true in
      while !continue do
        if
          !qhat >= base
          || !qhat * vn.(n - 2) > (!rhat lsl base_bits) lor un.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + vn.(n - 1);
          if !rhat >= base then continue := false
        end
        else continue := false
      done;
      (* Multiply-subtract qhat * vn from un[j .. j+n]. *)
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * vn.(i) in
        let t = un.(i + j) - !carry - (p land mask) in
        un.(i + j) <- t land mask;
        carry := (p lsr base_bits) - (t asr base_bits)
      done;
      let t = un.(j + n) - !carry in
      un.(j + n) <- t land mask;
      if t < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s2 = un.(i + j) + vn.(i) + !c in
          un.(i + j) <- s2 land mask;
          c := s2 lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !c) land mask
      end;
      q.(j) <- !qhat
    done;
    let r = norm (Array.sub un 0 n) in
    (norm q, shift_right_mag r s)
  end

(* ------------------------------------------------------------------ *)
(* Signed layer                                                        *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = norm mag in
  if Array.length mag = 0 then { sign = 0; mag = mag_zero } else { sign; mag }

let zero = { sign = 0; mag = mag_zero }
let one = { sign = 1; mag = [| 1 |] }
let minus_one = { sign = -1; mag = [| 1 |] }
let two = { sign = 1; mag = [| 2 |] }

let of_int v =
  if v = 0 then zero
  else begin
    let sign = if v < 0 then -1 else 1 in
    if v = Stdlib.min_int then
      (* |min_int| = 2^62 overflows [abs]; its limbs are [0; 0; 1]. *)
      { sign; mag = [| 0; 0; 1 |] }
    else begin
      let rec limbs v acc =
        if v = 0 then acc else limbs (v lsr base_bits) ((v land mask) :: acc)
      in
      let l = List.rev (limbs (Stdlib.abs v) []) in
      make sign (Array.of_list l)
    end
  end

let sign x = x.sign
let is_zero x = x.sign = 0
let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1
let equal a b = a.sign = b.sign && a.mag = b.mag

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let hash x = Hashtbl.hash (x.sign, x.mag)

let bit_length x =
  let n = Array.length x.mag in
  if n = 0 then 0 else ((n - 1) * base_bits) + bits_of_limb x.mag.(n - 1)

let test_bit x i =
  if i < 0 then invalid_arg "Bigint.test_bit";
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length x.mag && x.mag.(limb) lsr off land 1 = 1

let is_even x = Array.length x.mag = 0 || x.mag.(0) land 1 = 0
let is_odd x = not (is_even x)

let to_int_opt x =
  if Array.length x.mag = 0 then Some 0
  else begin
    let bl = bit_length x in
    if bl > 63 then None
    else if bl = 63 then
      (* Magnitude in [2^62, 2^63): only -2^62 = min_int fits. *)
      if x.sign < 0 && x.mag = [| 0; 0; 1 |] then Some Stdlib.min_int else None
    else begin
      let v = ref 0 in
      for i = Array.length x.mag - 1 downto 0 do
        v := (!v lsl base_bits) lor x.mag.(i)
      done;
      (* bl <= 62 so the accumulated magnitude is below 2^62: no wrap. *)
      Some (if x.sign < 0 then - !v else !v)
    end
  end

let fits_int x = to_int_opt x <> None

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int: value out of native int range"

let neg x = { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_schoolbook a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag_school a.mag b.mag)

let mul_int a v =
  if v = 0 || a.sign = 0 then zero
  else if v > 0 && v < base then make a.sign (mul_mag_small a.mag v)
  else if v > -base && v < 0 then make (-a.sign) (mul_mag_small a.mag (-v))
  else mul a (of_int v)

let add_int a v =
  if v = 0 then a
  else if a.sign >= 0 && v > 0 && v < base then
    make 1 (add_mag_small a.mag v)
  else add a (of_int v)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q, r = divmod_mag a.mag b.mag in
    let q = make (a.sign * b.sign) q in
    let r = make a.sign r in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (sub q one, add r b)
  else (add q one, sub r b)

let erem a b = snd (ediv_rem a b)

(* Word-size Euclidean remainder without Algorithm D: scan the limbs
   high to low with the running remainder kept below [m], so each step
   ((r << 31) | limb, with r < m < 2^31) stays under 2^62 and fits a
   native int.  The batched determinant filter reduces every matrix
   entry through this; unlike [erem] it allocates nothing. *)
let rem_int x m =
  if m <= 1 || m >= base then
    invalid_arg "Bigint.rem_int: modulus must be in (1, 2^31)";
  let r = ref 0 in
  for i = Array.length x.mag - 1 downto 0 do
    r := ((!r lsl base_bits) lor Array.unsafe_get x.mag i) mod m
  done;
  if x.sign < 0 && !r <> 0 then m - !r else !r

(* Arena of reusable limb/residue workspaces.  Magnitude kernels above
   are purely functional and allocate per call; sweeps that churn
   through thousands of instances (E6/E7-scale determinant batches)
   instead check buffers out of an arena and return them, so the
   steady state allocates nothing.  Buffers are handed back with
   length >= the request and unspecified contents. *)
module Arena = struct
  type t = {
    mutable free : int array list;
    mutable fresh : int;
    mutable reused : int;
  }

  let create () = { free = []; fresh = 0; reused = 0 }

  let alloc t n =
    let rec take acc = function
      | [] -> None
      | b :: rest when Array.length b >= n ->
          t.free <- List.rev_append acc rest;
          Some b
      | b :: rest -> take (b :: acc) rest
    in
    match take [] t.free with
    | Some b ->
        t.reused <- t.reused + 1;
        b
    | None ->
        t.fresh <- t.fresh + 1;
        Array.make (Stdlib.max n 1) 0

  let release t b = t.free <- b :: t.free
  let stats t = (t.fresh, t.reused)
end

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go one b e

let shift_left x n =
  if n < 0 then invalid_arg "Bigint.shift_left";
  if x.sign = 0 then zero else make x.sign (shift_left_mag x.mag n)

let shift_right x n =
  if n < 0 then invalid_arg "Bigint.shift_right";
  if x.sign = 0 then zero else make x.sign (shift_right_mag x.mag n)

let isqrt x =
  if x.sign < 0 then invalid_arg "Bigint.isqrt: negative";
  if x.sign = 0 then zero
  else begin
    (* Newton iteration from a power-of-two overestimate; decreasing,
       terminates at floor(sqrt x). *)
    let s = ref (shift_left one ((bit_length x + 1) / 2)) in
    let continue = ref true in
    while !continue do
      let next = shift_right (add !s (div x !s)) 1 in
      if compare next !s < 0 then s := next else continue := false
    done;
    !s
  end

let isqrt_ceil x =
  let s = isqrt x in
  if equal (mul s s) x then s else add s one

let rec gcd_mag a b =
  if Array.length b = 0 then a
  else
    let _, r = divmod_mag a b in
    gcd_mag b r

let gcd a b =
  let r =
    if cmp_mag a.mag b.mag >= 0 then gcd_mag a.mag b.mag
    else gcd_mag b.mag a.mag
  in
  make 1 r

let gcdext a b =
  (* Iterative extended Euclid maintaining r = a*x + b*y. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if is_zero r1 then (r0, x0, y0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 x1 y1 r2 (sub x0 (mul q x1)) (sub y0 (mul q y1))
    end
  in
  let g, x, y = go a one zero b zero one in
  if g.sign < 0 then (neg g, neg x, neg y) else (g, x, y)

let lcm a b =
  if is_zero a || is_zero b then zero
  else
    let g = gcd a b in
    abs (mul (div a g) b)

(* ------------------------------------------------------------------ *)
(* Strings                                                             *)
(* ------------------------------------------------------------------ *)

let chunk_base = 1_000_000_000 (* 10^9 < 2^31 *)
let chunk_digits = 9

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = divmod_mag m [| chunk_base |] in
        let rv = if Array.length r = 0 then 0 else r.(0) in
        chunks q (rv :: acc)
      end
    in
    (match chunks x.mag [] with
    | [] -> assert false
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter
          (fun c -> Buffer.add_string buf (Printf.sprintf "%0*d" chunk_digits c))
          rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign_char, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      acc := add_int (mul_int !acc (Commx_util.Combi.power 10 !chunk_len)) !chunk;
      chunk := 0;
      chunk_len := 0
    end
  in
  let saw_digit = ref false in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
        saw_digit := true;
        chunk := (!chunk * 10) + (Char.code c - Char.code '0');
        incr chunk_len;
        if !chunk_len = chunk_digits then flush ()
    | '_' -> ()
    | _ -> invalid_arg "Bigint.of_string: invalid character"
  done;
  flush ();
  if not !saw_digit then invalid_arg "Bigint.of_string: no digits";
  if sign_char < 0 then neg !acc else !acc

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

(* ------------------------------------------------------------------ *)
(* Operators, random, misc                                             *)
(* ------------------------------------------------------------------ *)

let ( +! ) = add
let ( -! ) = sub
let ( *! ) = mul
let ( /! ) = div
let ( %! ) = rem
let ( =! ) = equal
let ( <! ) a b = compare a b < 0
let ( <=! ) a b = compare a b <= 0
let ( >! ) a b = compare a b > 0
let ( >=! ) a b = compare a b >= 0

let random_bits g bits =
  if bits < 0 then invalid_arg "Bigint.random_bits";
  if bits = 0 then zero
  else begin
    let nlimbs = (bits + base_bits - 1) / base_bits in
    let mag = Array.make nlimbs 0 in
    for i = 0 to nlimbs - 1 do
      mag.(i) <- Commx_util.Prng.int g base
    done;
    let top_bits = bits - ((nlimbs - 1) * base_bits) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    make 1 mag
  end

let random_below g bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound <= 0";
  let bits = bit_length bound in
  let rec draw () =
    let v = random_bits g bits in
    if compare v bound < 0 then v else draw ()
  in
  draw ()

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pp ppf x = Format.pp_print_string ppf (to_string x)
