(** Modular arithmetic, in two flavours.

    The word-size flavour ({!Word}) works modulo an [int] modulus below
    2^31 so that products never overflow a 63-bit native int; it powers
    the randomized fingerprinting protocol (entries reduced mod a random
    prime) and the CRT determinant.  The bignum flavour operates on
    {!Bigint} values for arbitrary moduli. *)

module Word : sig
  type modulus = private int
  (** A checked modulus in [\[2, 2^31)]. *)

  val modulus : int -> modulus
  (** @raise Invalid_argument outside [\[2, 2^31)]. *)

  val to_int : modulus -> int

  val reduce : modulus -> int -> int
  (** Canonical residue in [\[0, m)] of any native int (negative
      included). *)

  val reduce_big : modulus -> Bigint.t -> int
  (** Canonical residue of a bignum. *)

  (** {!add}, {!sub}, {!mul}, {!pow} and {!neg} expect {e canonical}
      residues in [\[0, m)] (as produced by {!reduce} / {!reduce_big})
      and return canonical residues; feeding them out-of-range
      representatives is unchecked and gives wrong answers rather than
      an error. *)

  val add : modulus -> int -> int -> int
  val sub : modulus -> int -> int -> int
  val mul : modulus -> int -> int -> int

  val pow : modulus -> int -> int -> int
  (** [pow m b e] for [e >= 0]; [pow m b 0 = 1] for every canonical [b]
      (including [b = 0]), for any modulus — prime or composite. *)

  val inv : modulus -> int -> int
  (** Multiplicative inverse of a canonical residue.
      @raise Division_by_zero when [gcd (x, m) <> 1] — in particular on
      [x = 0], and on any [x] sharing a factor with a composite
      modulus.  Never returns a bogus value for non-invertible
      arguments. *)

  val neg : modulus -> int -> int
end

(** Arbitrary-precision modular operations.  All arguments are reduced
    first, so any representative is accepted. *)

val add : m:Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
val sub : m:Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
val mul : m:Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t

val pow : m:Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
(** [pow ~m b e] with [e >= 0] by square-and-multiply. *)

val inv : m:Bigint.t -> Bigint.t -> Bigint.t
(** @raise Division_by_zero when gcd(x, m) <> 1. *)

val crt : (Bigint.t * Bigint.t) list -> Bigint.t * Bigint.t
(** [crt \[(r1, m1); (r2, m2); ...\]] solves the simultaneous
    congruences x = ri (mod mi) for pairwise-coprime moduli, returning
    [(x, m1*m2*...)] with [0 <= x < product].
    @raise Invalid_argument on an empty list or non-coprime moduli. *)
