(** The differential property suite: every optimized layer against an
    independent oracle.

    Coverage (optimized implementation vs. oracle):
    - [bigint.*] — {!Commx_bigint.Bigint} vs. native-int arithmetic on
      word-sized inputs, div/mod reconstruction laws, decimal
      round-trip, Karatsuba vs. forced schoolbook;
    - [modarith.*] — {!Commx_bigint.Modarith.Word} vs. bignum
      [(a op b) mod m], and the [inv] / [Division_by_zero] contract;
    - [bitvec.*] / [bitmat.*] — SWAR kernels ([popcount_int],
      [mono_masked], packed rows/columns) vs. bit-at-a-time loops;
    - [txtable.*] — {!Commx_util.Txtable} vs. an association model:
      exact agreement unbudgeted, fail-softness under eviction;
    - [exact_cc.*] — the optimized search vs. the reference enumerator,
      and the certified lower/upper bound sandwich;
    - [zmatrix.*] — Bareiss and CRT determinants vs. cofactor
      expansion, rank/determinant consistency, the Hadamard bound;
    - [lemma32.*] — the singularity criterion vs. direct determinant
      evaluation on random and on completed (Lemma 3.5(a)) restricted
      Fig. 1/3 instances;
    - [json.*], [stats.*], [combi.*] — serialization round-trip
      (non-finite floats, control characters), percentile/median
      consistency, overflow-exact [power] vs. bignum exponentiation. *)

val all : unit -> Property.t list
(** Every property, in a fixed order (the order does not affect any
    property's value stream — see {!Runner.case_seed}). *)
