module B = Commx_bigint.Bigint
module Bitmat = Commx_util.Bitmat

type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

(* Order-preserving dedup; candidate lists are tiny. *)
let dedup xs =
  let rec go seen = function
    | [] -> []
    | x :: tl -> if List.mem x seen then go seen tl else x :: go (x :: seen) tl
  in
  go [] xs

let int x =
  if x = 0 then Seq.empty
  else
    let step = if x > 0 then x - 1 else x + 1 in
    List.to_seq (dedup (List.filter (fun v -> v <> x) [ 0; x / 2; step ]))

let pair sa sb (a, b) =
  Seq.append
    (Seq.map (fun a' -> (a', b)) (sa a))
    (Seq.map (fun b' -> (a, b')) (sb b))

let triple sa sb sc (a, b, c) =
  Seq.append
    (Seq.map (fun a' -> (a', b, c)) (sa a))
    (Seq.append
       (Seq.map (fun b' -> (a, b', c)) (sb b))
       (Seq.map (fun c' -> (a, b, c')) (sc c)))

let array ?(elt = nothing) () a =
  let n = Array.length a in
  let halves =
    if n = 0 then Seq.empty
    else if n = 1 then Seq.return [||]
    else
      List.to_seq [ Array.sub a 0 (n / 2); Array.sub a (n / 2) (n - (n / 2)) ]
  in
  let drop_one =
    if n < 2 || n > 16 then Seq.empty
    else
      Seq.init n (fun i ->
          Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1)))
  in
  let elements =
    Seq.concat_map
      (fun i ->
        Seq.map
          (fun e ->
            let a' = Array.copy a in
            a'.(i) <- e;
            a')
          (elt a.(i)))
      (Seq.init n Fun.id)
  in
  Seq.append halves (Seq.append drop_one elements)

let list ?elt () l =
  Seq.map Array.to_list (array ?elt () (Array.of_list l))

let bigint x =
  if B.is_zero x then Seq.empty
  else
    let halved = B.shift_right x 1 in
    List.to_seq
      (if B.equal halved B.zero then [ B.zero ] else [ B.zero; halved ])

let bitmat m =
  let r = Bitmat.rows m and c = Bitmat.cols m in
  let idx n = Array.init n Fun.id in
  let dim_halves =
    List.filter_map Fun.id
      [
        (if r > 1 then Some (Bitmat.submatrix m (idx (r / 2)) (idx c))
         else None);
        (if c > 1 then Some (Bitmat.submatrix m (idx r) (idx (c / 2)))
         else None);
      ]
  in
  let cleared = ref [] in
  for i = r - 1 downto 0 do
    for j = c - 1 downto 0 do
      if Bitmat.get m i j then begin
        let m' = Bitmat.copy m in
        Bitmat.set m' i j false;
        cleared := m' :: !cleared
      end
    done
  done;
  List.to_seq (dim_halves @ !cleared)
