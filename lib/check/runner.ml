module Prng = Commx_util.Prng
module Clock = Commx_util.Clock
module Telemetry = Commx_util.Telemetry

(* Two rounds of a murmur-style avalanche over wrapping native-int
   arithmetic.  Only determinism and stream separation matter (each
   result seeds a full SplitMix64 generator), not bit-level quality. *)
let mix a b =
  let h = a lxor (b * 0x100000001b3) in
  let h = h lxor (h lsr 33) in
  let h = h * 0xff51afd7ed558cc in
  h lxor (h lsr 29)

let case_seed ~seed ~name ~index = mix (mix seed (Hashtbl.hash name)) index
let max_shrink_steps = 500

type failure = {
  case_index : int;
  case_seed : int;
  message : string;
  counterexample : string;
  original : string;
  shrink_steps : int;
}

type outcome = Pass | Failed of failure

type report = {
  name : string;
  cases : int;
  outcome : outcome;
  wall_s : float;
}

let failures_counter = Telemetry.counter "check.failures"

let run_one ?budget_s ~seed ~count (Property.Prop p) =
  let t0 = Clock.now_s () in
  let cases_counter = Telemetry.counter ("check." ^ p.name ^ ".cases") in
  let check_catch x =
    try p.check x
    with e ->
      Some (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e))
  in
  (* Greedy descent: first still-failing candidate wins, repeat. *)
  let shrink x0 msg0 =
    let rec go x msg steps =
      if steps >= max_shrink_steps then (x, msg, steps)
      else begin
        let next =
          try
            Seq.find_map
              (fun c ->
                match check_catch c with
                | Some m -> Some (c, m)
                | None -> None)
              (p.shrink x)
          with _ -> None
        in
        match next with
        | Some (c, m) -> go c m (steps + 1)
        | None -> (x, msg, steps)
      end
    in
    go x0 msg0 0
  in
  let over_budget () =
    match budget_s with
    | None -> false
    | Some b -> Clock.now_s () -. t0 >= b
  in
  let rec loop i =
    if i >= count || over_budget () then
      { name = p.name; cases = i; outcome = Pass; wall_s = Clock.now_s () -. t0 }
    else begin
      let cs = case_seed ~seed ~name:p.name ~index:i in
      let g = Prng.create cs in
      Telemetry.incr cases_counter;
      let case =
        match p.gen g with
        | x -> Ok x
        | exception e ->
            Error
              (Printf.sprintf "generator raised: %s" (Printexc.to_string e))
      in
      match case with
      | Error message ->
          Telemetry.incr failures_counter;
          {
            name = p.name;
            cases = i + 1;
            outcome =
              Failed
                {
                  case_index = i;
                  case_seed = cs;
                  message;
                  counterexample = "<generator failure>";
                  original = "<generator failure>";
                  shrink_steps = 0;
                };
            wall_s = Clock.now_s () -. t0;
          }
      | Ok x -> (
          match check_catch x with
          | None -> loop (i + 1)
          | Some msg ->
              Telemetry.incr failures_counter;
              let x', msg', steps = shrink x msg in
              {
                name = p.name;
                cases = i + 1;
                outcome =
                  Failed
                    {
                      case_index = i;
                      case_seed = cs;
                      message = msg';
                      counterexample = p.show x';
                      original = p.show x;
                      shrink_steps = steps;
                    };
                wall_s = Clock.now_s () -. t0;
              })
    end
  in
  loop 0

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  if lb = 0 then true
  else begin
    let rec at i =
      if i + lb > ls then false
      else String.sub s i lb = sub || at (i + 1)
    in
    at 0
  end

let run ?budget_s ?filter ~seed ~count props =
  let props =
    match filter with
    | None -> props
    | Some sub ->
        List.filter (fun p -> contains ~sub (Property.name p)) props
  in
  List.map (run_one ?budget_s ~seed ~count) props

let all_passed reports =
  List.for_all (fun r -> match r.outcome with Pass -> true | Failed _ -> false)
    reports
