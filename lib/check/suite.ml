module Prng = Commx_util.Prng
module Bitvec = Commx_util.Bitvec
module Bitmat = Commx_util.Bitmat
module Txtable = Commx_util.Txtable
module Json = Commx_util.Json
module Stats = Commx_util.Stats
module Combi = Commx_util.Combi
module B = Commx_bigint.Bigint
module Mod = Commx_bigint.Modarith
module Zm = Commx_linalg.Zmatrix
module Exact_cc = Commx_comm.Exact_cc
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35

(* Run labelled sub-checks in order; the first failing label is the
   divergence message (the printed counterexample carries the data). *)
let all_of checks =
  List.fold_left
    (fun acc (label, f) ->
      match acc with
      | Some _ -> acc
      | None -> if f () then None else Some label)
    None checks

let show_int_pair (a, b) = Printf.sprintf "(%d, %d)" a b

let show_bigint_pair (a, b) =
  Printf.sprintf "(%s, %s)" (B.to_string a) (B.to_string b)

let show_bitmat m = Format.asprintf "%a" Bitmat.pp m

(* ------------------------------------------------------------------ *)
(* Bigint vs. native ints and algebraic laws                           *)
(* ------------------------------------------------------------------ *)

(* Operands bounded so every native-int result below is exact
   (|a*b| < 2^60). *)
let bigint_vs_native =
  let word = Gen.int_range (-(1 lsl 30)) (1 lsl 30) in
  Property.make ~name:"bigint.vs_native_ring" ~gen:(Gen.pair word word)
    ~shrink:(Shrink.pair Shrink.int Shrink.int) ~show:show_int_pair
    (fun (a, b) ->
      let ba = B.of_int a and bb = B.of_int b in
      all_of
        [
          ("to_int(of_int)", fun () -> B.to_int ba = a);
          ("add", fun () -> B.to_int (B.add ba bb) = a + b);
          ("sub", fun () -> B.to_int (B.sub ba bb) = a - b);
          ("mul", fun () -> B.to_int (B.mul ba bb) = a * b);
          ("mul_int", fun () -> B.to_int (B.mul_int ba b) = a * b);
          ("neg", fun () -> B.to_int (B.neg ba) = -a);
          ("compare", fun () -> B.compare ba bb = compare a b);
          ("div", fun () -> b = 0 || B.to_int (B.div ba bb) = a / b);
          ("rem", fun () -> b = 0 || B.to_int (B.rem ba bb) = a mod b);
        ])

let gen_bigint_sized lo hi = Gen.bigint ~bits:(Gen.int_range lo hi)

let bigint_divmod =
  let gen g =
    let a = gen_bigint_sized 0 220 g in
    let b = gen_bigint_sized 1 120 g in
    (a, (if B.is_zero b then B.one else b))
  in
  Property.make ~name:"bigint.divmod_laws" ~gen
    ~shrink:(Shrink.pair Shrink.bigint Shrink.bigint) ~show:show_bigint_pair
    (fun (a, b) ->
      if B.is_zero b then None (* a shrunk divisor may reach zero *)
      else begin
        let q, r = B.divmod a b in
        let eq, er = B.ediv_rem a b in
        all_of
          [
            ("reconstruct", fun () -> B.equal (B.add (B.mul q b) r) a);
            ("rem_range", fun () -> B.compare (B.abs r) (B.abs b) < 0);
            ("rem_sign", fun () -> B.is_zero r || B.sign r = B.sign a);
            ( "ediv_reconstruct",
              fun () -> B.equal (B.add (B.mul eq b) er) a );
            ( "erem_range",
              fun () -> B.sign er >= 0 && B.compare er (B.abs b) < 0 );
            ("div_agrees", fun () -> B.equal (B.div a b) q);
            ("rem_agrees", fun () -> B.equal (B.rem a b) r);
          ]
      end)

let bigint_string_roundtrip =
  Property.make ~name:"bigint.string_roundtrip" ~gen:(gen_bigint_sized 0 300)
    ~shrink:Shrink.bigint ~show:B.to_string (fun x ->
      all_of
        [
          ( "of_string(to_string)",
            fun () -> B.equal (B.of_string (B.to_string x)) x );
          ( "sign_of_rendering",
            fun () ->
              let s = B.to_string x in
              (B.sign x < 0) = (String.length s > 0 && s.[0] = '-') );
        ])

let bigint_karatsuba =
  let big = 31 * B.karatsuba_threshold in
  let gen = Gen.pair (gen_bigint_sized big (3 * big)) (gen_bigint_sized big (3 * big)) in
  Property.make ~name:"bigint.karatsuba_vs_schoolbook" ~gen
    ~shrink:(Shrink.pair Shrink.bigint Shrink.bigint) ~show:show_bigint_pair
    (fun (a, b) ->
      all_of
        [ ("mul", fun () -> B.equal (B.mul a b) (B.mul_schoolbook a b)) ])

(* ------------------------------------------------------------------ *)
(* Modarith.Word vs. bignum modular arithmetic                         *)
(* ------------------------------------------------------------------ *)

let gen_modulus = Gen.int_range 2 ((1 lsl 31) - 1)

let modarith_vs_bigint =
  let gen = Gen.triple gen_modulus Gen.any_int Gen.any_int in
  Property.make ~name:"modarith.word_vs_bigint" ~gen
    ~shrink:(Shrink.triple Shrink.int Shrink.int Shrink.int)
    ~show:(fun (m, a, b) -> Printf.sprintf "(m=%d, %d, %d)" m a b)
    (fun (m, a, b) ->
      if m < 2 then None (* shrinking may leave the modulus range *)
      else begin
        let mm = Mod.Word.modulus m in
        let bm = B.of_int m in
        let ra = Mod.Word.reduce mm a and rb = Mod.Word.reduce mm b in
        let via_big op = B.to_int (B.erem (op (B.of_int ra) (B.of_int rb)) bm) in
        let e = abs (b mod 8) in
        all_of
          [
            ("reduce", fun () -> ra = B.to_int (B.erem (B.of_int a) bm));
            ("reduce_big", fun () -> Mod.Word.reduce_big mm (B.of_int a) = ra);
            ("add", fun () -> Mod.Word.add mm ra rb = via_big B.add);
            ("sub", fun () -> Mod.Word.sub mm ra rb = via_big B.sub);
            ("mul", fun () -> Mod.Word.mul mm ra rb = via_big B.mul);
            ("neg", fun () -> Mod.Word.add mm ra (Mod.Word.neg mm ra) = 0);
            ( "pow",
              fun () ->
                Mod.Word.pow mm ra e
                = B.to_int (B.erem (B.pow (B.of_int ra) e) bm) );
          ]
      end)

let modarith_inv_contract =
  let gen = Gen.pair gen_modulus Gen.any_int in
  Property.make ~name:"modarith.inv_contract" ~gen
    ~shrink:(Shrink.pair Shrink.int Shrink.int) ~show:show_int_pair
    (fun (m, x) ->
      if m < 2 then None
      else begin
        let mm = Mod.Word.modulus m in
        let rx = Mod.Word.reduce mm x in
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        if gcd rx m = 1 then
          all_of
            [
              ( "x*inv(x)=1",
                fun () -> Mod.Word.mul mm rx (Mod.Word.inv mm rx) = 1 );
            ]
        else begin
          (* gcd 0 m = m >= 2, so x = 0 lands here too. *)
          match Mod.Word.inv mm rx with
          | _ -> Some "non-invertible: expected Division_by_zero"
          | exception Division_by_zero -> None
        end
      end)

(* ------------------------------------------------------------------ *)
(* Bitvec / Bitmat SWAR kernels vs. naive loops                        *)
(* ------------------------------------------------------------------ *)

let bitvec_vs_model =
  let gen g =
    let len = Prng.int g 201 in
    let v1 = Bitvec.random g len in
    let v2 = Bitvec.random g len in
    (v1, v2)
  in
  Property.make ~name:"bitvec.vs_bool_model" ~gen
    ~show:(fun (v1, v2) ->
      Printf.sprintf "(%s, %s)" (Bitvec.to_string v1) (Bitvec.to_string v2))
    (fun (v1, v2) ->
      let len = Bitvec.length v1 in
      let b1 = Oracles.bitvec_bools v1 and b2 = Oracles.bitvec_bools v2 in
      let via_model op =
        let d = Bitvec.copy v1 in
        op d v2;
        Oracles.bitvec_bools d
      in
      all_of
        [
          ( "popcount",
            fun () ->
              Bitvec.popcount v1
              = Array.fold_left (fun a b -> if b then a + 1 else a) 0 b1 );
          ( "xor",
            fun () ->
              via_model Bitvec.xor_into
              = Array.init len (fun i -> b1.(i) <> b2.(i)) );
          ( "and",
            fun () ->
              via_model Bitvec.and_into
              = Array.init len (fun i -> b1.(i) && b2.(i)) );
          ( "or",
            fun () ->
              via_model Bitvec.or_into
              = Array.init len (fun i -> b1.(i) || b2.(i)) );
          ( "string_roundtrip",
            fun () -> Bitvec.equal (Bitvec.of_string (Bitvec.to_string v1)) v1
          );
          ( "sub_append",
            fun () ->
              let h = len / 2 in
              Bitvec.equal
                (Bitvec.append (Bitvec.sub v1 0 h) (Bitvec.sub v1 h (len - h)))
                v1 );
          ( "compare_antisym",
            fun () -> Bitvec.compare v1 v2 = -Bitvec.compare v2 v1 );
          ( "hash_stable",
            fun () -> Bitvec.hash v1 = Bitvec.hash (Bitvec.copy v1) );
          ( "is_zero",
            fun () -> Bitvec.is_zero v1 = Array.for_all not b1 );
          ( "fold_set_bits",
            fun () ->
              List.rev (Bitvec.fold_set_bits (fun i acc -> i :: acc) v1 [])
              = List.filter (fun i -> b1.(i)) (List.init len Fun.id) );
        ])

let bitvec_popcount_int =
  Property.make ~name:"bitvec.popcount_int_vs_naive" ~gen:Gen.nonneg_int
    ~shrink:Shrink.int ~show:string_of_int (fun x ->
      all_of
        [
          ( "popcount_int",
            fun () -> Bitvec.popcount_int x = Oracles.popcount_int_naive x );
        ])

let gen_small_bitmat lo hi g =
  let r = Prng.int_incl g lo hi in
  let c = Prng.int_incl g lo hi in
  Bitmat.random g r c

let bitmat_kernels =
  let gen g =
    let m = gen_small_bitmat 1 10 g in
    let rmask = Prng.int g (1 lsl Bitmat.rows m) in
    let cmask = Prng.int g (1 lsl Bitmat.cols m) in
    (m, rmask, cmask)
  in
  Property.make ~name:"bitmat.kernels_vs_naive" ~gen
    ~shrink:(Shrink.triple Shrink.bitmat Shrink.int Shrink.int)
    ~show:(fun (m, rmask, cmask) ->
      Format.asprintf "rmask=%d cmask=%d@\n%a" rmask cmask Bitmat.pp m)
    (fun (m, rmask, cmask) ->
      let r = Bitmat.rows m and c = Bitmat.cols m in
      let rmask = rmask land ((1 lsl r) - 1) in
      let cmask = cmask land ((1 lsl c) - 1) in
      let pr = Bitmat.packed_rows m and pc = Bitmat.packed_cols m in
      all_of
        [
          ( "mono_rows",
            fun () ->
              Bitmat.mono_masked pr ~rmask ~cmask
              = Oracles.mono_masked_naive m ~rmask ~cmask );
          ( "mono_cols",
            fun () ->
              Bitmat.mono_masked pc ~rmask:cmask ~cmask:rmask
              = Oracles.mono_masked_naive m ~rmask ~cmask );
          ( "packed_rows",
            fun () ->
              Array.for_all Fun.id
                (Array.init r (fun i ->
                     Array.for_all Fun.id
                       (Array.init c (fun j ->
                            (pr.(i) lsr j) land 1
                            = (if Bitmat.get m i j then 1 else 0))))) );
          ( "packed_cols",
            fun () ->
              Array.for_all Fun.id
                (Array.init c (fun j ->
                     Array.for_all Fun.id
                       (Array.init r (fun i ->
                            (pc.(j) lsr i) land 1
                            = (if Bitmat.get m i j then 1 else 0))))) );
          ( "count_ones",
            fun () -> Bitmat.count_ones m = Oracles.count_ones_naive m );
          ( "rank_transpose",
            fun () -> Bitmat.rank m = Bitmat.rank (Bitmat.transpose m) );
        ])

(* The batched rank kernel must be indistinguishable from mapping the
   scalar one — including on empty boards, boards with zero columns,
   and boards too wide to pack (the per-board fallback path). *)
let show_int_array a =
  "[" ^ String.concat "; " (List.map string_of_int (Array.to_list a)) ^ "]"

let bitmat_rank_batch =
  let gen g =
    let count = Prng.int_incl g 0 8 in
    Array.init count (fun _ ->
        if Prng.int g 8 = 0 then
          Bitmat.random g (Prng.int_incl g 1 3)
            (Bitvec.bits_per_word + Prng.int_incl g 1 4)
        else gen_small_bitmat 0 10 g)
  in
  Property.make ~name:"bitmat.rank_batch_vs_scalar" ~gen
    ~show:(fun ms ->
      String.concat "\n---\n" (Array.to_list (Array.map show_bitmat ms)))
    (fun ms ->
      let batch = Bitmat.rank_batch ms in
      let scalar = Array.map Bitmat.rank ms in
      if batch = scalar then None
      else
        Some
          (Printf.sprintf "batch %s <> scalar %s" (show_int_array batch)
             (show_int_array scalar)))

(* ------------------------------------------------------------------ *)
(* Txtable vs. association model                                      *)
(* ------------------------------------------------------------------ *)

let txtable_vs_model =
  (* Keys confined to a small range so linear-probing collisions are
     the common case, not the rare one. *)
  let gen =
    Gen.array (Gen.int_range 0 300)
      (Gen.triple Gen.bool (Gen.int_range 0 63) (Gen.int_range 0 1000))
  in
  Property.make ~name:"txtable.vs_assoc_model" ~gen
    ~shrink:(Shrink.array ())
    ~show:(fun ops ->
      String.concat ";"
        (Array.to_list
           (Array.map
              (fun (s, k, v) ->
                Printf.sprintf "%s %d %d" (if s then "set" else "find") k v)
              ops)))
    (fun ops ->
      let t = Txtable.create ~initial_bits:2 () in
      let model = Oracles.Table_model.create () in
      let sets = ref 0 in
      let bad = ref None in
      Array.iteri
        (fun idx (is_set, k, v) ->
          if !bad = None then
            if is_set then begin
              Txtable.set t k v;
              Oracles.Table_model.set model k v;
              incr sets
            end
            else begin
              let got = Txtable.find t k in
              let want = Oracles.Table_model.find model k in
              if got <> want then
                bad :=
                  Some
                    (Printf.sprintf "find %d at op %d: table %d, model %d" k
                       idx got want)
            end)
        ops;
      match !bad with
      | Some _ as s -> s
      | None ->
          all_of
            [
              ( "length",
                fun () -> Txtable.length t = Oracles.Table_model.length model
              );
              ("stores", fun () -> (Txtable.stats t).Txtable.stores = !sets);
            ])

let txtable_eviction_fail_soft =
  let gen =
    Gen.array (Gen.int_range 0 400)
      (Gen.pair (Gen.int_range 0 4095) (Gen.int_range 0 1000))
  in
  Property.make ~name:"txtable.eviction_fail_soft" ~gen
    ~shrink:(Shrink.array ())
    ~show:(fun ops -> Printf.sprintf "<%d inserts>" (Array.length ops))
    (fun ops ->
      let t = Txtable.create ~budget_entries:32 ~initial_bits:3 () in
      let model = Oracles.Table_model.create () in
      Array.iter
        (fun (k, v) ->
          Txtable.set t k v;
          Oracles.Table_model.set model k v)
        ops;
      (* Fail-soft: an evicted key reads back -1, a present key must
         carry the model's (last-written) value — never a stale or
         foreign one. *)
      let bad =
        Oracles.Table_model.fold
          (fun k want acc ->
            match acc with
            | Some _ -> acc
            | None ->
                let got = Txtable.find t k in
                if got = -1 || got = want then None
                else
                  Some
                    (Printf.sprintf "key %d: table %d, model %d" k got want))
          model None
      in
      match bad with
      | Some _ as s -> s
      | None ->
          all_of
            [
              ("capacity_at_budget", fun () -> Txtable.capacity t <= 32);
              ( "length_le_capacity",
                fun () -> Txtable.length t <= Txtable.capacity t );
            ])

(* ------------------------------------------------------------------ *)
(* Exact CC: optimized search vs. reference enumerator and bounds      *)
(* ------------------------------------------------------------------ *)

let exact_cc_vs_reference =
  Property.make ~name:"exact_cc.optimized_vs_reference"
    ~gen:(gen_small_bitmat 1 5) ~shrink:Shrink.bitmat ~show:show_bitmat
    (fun m ->
      let v_opt, _ = Exact_cc.search m in
      let v_ref, _ = Exact_cc.search ~config:Exact_cc.reference_config m in
      all_of [ ("cc", fun () -> v_opt = v_ref) ])

let exact_cc_sandwiched =
  Property.make ~name:"exact_cc.bounds_sandwich" ~gen:(gen_small_bitmat 1 6)
    ~shrink:Shrink.bitmat ~show:show_bitmat (fun m ->
      all_of
        [ ("lower<=cc<=upper", fun () -> Exact_cc.optimal_is_sandwiched m) ])

let exact_cc_lb_portfolio_sound =
  (* Every member of the root lower-bound portfolio — GF(2)
     rank/fooling, rational log-rank, discrepancy — must individually
     stay at or below the exact CC: one unsound member would make the
     engine prune away optimal protocols and return wrong values while
     every ablation still agreed with itself.  Checked against the
     reference-grade exact value on boards small enough to afford it. *)
  Property.make ~name:"exact_cc.lb_portfolio_sound" ~gen:(gen_small_bitmat 1 5)
    ~shrink:Shrink.bitmat ~show:show_bitmat (fun m ->
      let cc, _ = Exact_cc.search m in
      all_of
        (List.map
           (fun (name, bound) -> (name ^ "<=cc", fun () -> bound <= cc))
           (Exact_cc.lower_bound_portfolio m)))

(* ------------------------------------------------------------------ *)
(* Zmatrix determinants vs. cofactor expansion                         *)
(* ------------------------------------------------------------------ *)

let zmatrix_det_agreement =
  let gen g =
    let n = Prng.int_incl g 1 4 in
    Gen.zmatrix ~rows:(Gen.return n) ~cols:(Gen.return n)
      ~bits:(Gen.int_range 0 64) g
  in
  Property.make ~name:"zmatrix.det_vs_cofactor" ~gen
    ~show:(fun m ->
      String.concat "\n"
        (List.init (Zm.rows m) (fun i ->
             String.concat " "
               (List.init (Zm.cols m) (fun j -> B.to_string (Zm.get m i j))))))
    (fun m ->
      let d = Zm.det_bareiss m in
      all_of
        [
          ("crt", fun () -> B.equal (Zm.det_crt m) d);
          ("cofactor", fun () -> B.equal (Oracles.det_cofactor m) d);
          ( "rank_full_iff_nonsingular",
            fun () -> (Zm.rank m = Zm.rows m) = not (B.is_zero d) );
          ( "hadamard",
            fun () -> B.compare (B.abs d) (Zm.hadamard_bound m) <= 0 );
          ( "transpose",
            fun () -> B.equal (Zm.det_bareiss (Zm.transpose m)) d );
          ( "det_mod_p",
            fun () ->
              let p = (1 lsl 30) - 35 in
              (* 2^30 - 35 is prime *)
              let mm = Mod.Word.modulus p in
              Zm.det_mod_p m p = Mod.Word.reduce_big mm d );
        ])

(* Batched singularity must agree with the scalar Bareiss verdict on a
   mix that forces both of its paths: random matrices (the mod-p
   filter certifies nonsingular) and rank-deficient constructions (the
   filter vanishes mod every prime and escalates to the exact det). *)
let show_zmatrix m =
  String.concat "\n"
    (List.init (Zm.rows m) (fun i ->
         String.concat " "
           (List.init (Zm.cols m) (fun j -> B.to_string (Zm.get m i j)))))

let zmatrix_singular_batch =
  let gen g =
    let count = Prng.int_incl g 0 6 in
    Array.init count (fun _ ->
        let n = Prng.int_incl g 1 5 in
        match Prng.int g 3 with
        | 0 -> Zm.random_of_rank g ~rows:n ~cols:n ~rank:(Prng.int g n)
        | 1 -> Zm.random_of_rank g ~rows:n ~cols:n ~rank:n
        | _ -> Zm.random g ~rows:n ~cols:n ~bits:(Prng.int_incl g 1 40))
  in
  Property.make ~name:"zmatrix.singular_batch_vs_scalar" ~gen
    ~show:(fun ms ->
      String.concat "\n---\n" (Array.to_list (Array.map show_zmatrix ms)))
    (fun ms ->
      let batch = Zm.singular_batch ms in
      let scalar = Array.map Zm.is_singular ms in
      if batch = scalar then None
      else
        Some
          (Printf.sprintf "batch verdicts [%s] <> scalar [%s]"
             (String.concat ";"
                (List.map string_of_bool (Array.to_list batch)))
             (String.concat ";"
                (List.map string_of_bool (Array.to_list scalar)))))

(* ------------------------------------------------------------------ *)
(* Lemma 3.2 criterion vs. direct determinant on Fig. 1/3 instances    *)
(* ------------------------------------------------------------------ *)

let lemma32_vs_determinant =
  let gen g =
    let p = Gen.small_params g in
    (p, Gen.hard_free p g)
  in
  Property.make ~name:"lemma32.criterion_vs_determinant" ~gen
    ~show:(fun (p, _) -> Format.asprintf "%a" Params.pp p)
    (fun (p, f) ->
      all_of
        [
          ("criterion_agrees_random", fun () -> L32.agrees p f);
          ( "completion_singular",
            fun () ->
              (* Lemma 3.5(a): completing (C, E) must yield a witness
                 that checks, a singular M by direct CRT determinant,
                 and a true Lemma 3.2 criterion. *)
              let w = L35.complete p ~c:f.H.c ~e:f.H.e in
              L35.check_witness p w
              && B.is_zero (Zm.det_crt (H.build_m p w.L35.free))
              && L32.criterion p w.L35.free );
        ])

(* ------------------------------------------------------------------ *)
(* Json round-trip, Stats percentiles, Combi.power                     *)
(* ------------------------------------------------------------------ *)

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y ->
      (Float.is_nan x && Float.is_nan y) || x = y
  | Json.String x, Json.String y -> x = y
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2)
           xs ys
  | _ -> false

let gen_json =
  let string_ = Gen.byte_string (Gen.int_range 0 12) in
  let leaf g =
    match Prng.int g 6 with
    | 0 -> Json.Null
    | 1 -> Json.Bool (Prng.bool g)
    | 2 -> Json.Int (Gen.any_int g)
    | 3 | 4 ->
        let f =
          match Prng.int g 8 with
          | 0 -> Float.nan
          | 1 -> Float.infinity
          | 2 -> Float.neg_infinity
          | 3 -> 0.0
          | 4 -> -0.0
          | _ -> ldexp ((Prng.float g *. 2.0) -. 1.0) (Prng.int_incl g (-30) 30)
        in
        Json.Float f
    | _ -> Json.String (string_ g)
  in
  let rec value depth g =
    if depth = 0 then leaf g
    else begin
      match Prng.int g 4 with
      | 0 | 1 -> leaf g
      | 2 ->
          let n = Prng.int g 4 in
          Json.List (List.map (fun _ -> value (depth - 1) g) (List.init n Fun.id))
      | _ ->
          let n = Prng.int g 4 in
          Json.Obj
            (List.map
               (fun _ ->
                 let k = string_ g in
                 (k, value (depth - 1) g))
               (List.init n Fun.id))
    end
  in
  value 3

let json_roundtrip =
  Property.make ~name:"json.roundtrip" ~gen:gen_json ~show:Json.to_string
    (fun v ->
      all_of
        [
          ( "compact",
            fun () -> json_eq (Json.of_string (Json.to_string v)) v );
          ( "pretty",
            fun () -> json_eq (Json.of_string (Json.to_string_pretty v)) v );
        ])

let stats_percentiles =
  let gen =
    Gen.map
      (Array.map float_of_int)
      (Gen.array (Gen.int_range 1 40) (Gen.int_range (-50) 50))
  in
  Property.make ~name:"stats.percentile_median" ~gen
    ~shrink:(Shrink.array ~elt:Shrink.nothing ())
    ~show:(fun xs ->
      String.concat " " (Array.to_list (Array.map string_of_float xs)))
    (fun xs ->
      let n = Array.length xs in
      if n = 0 then None (* shrinking may empty the sample *)
      else begin
        let s = Array.copy xs in
        Array.sort Float.compare s;
        let rec mono = function
          | a :: (b :: _ as tl) -> a <= b && mono tl
          | _ -> true
        in
        all_of
          [
            ("p0_is_min", fun () -> Stats.percentile xs 0.0 = s.(0));
            ("p100_is_max", fun () -> Stats.percentile xs 100.0 = s.(n - 1));
            ( "median_is_middle",
              fun () ->
                let expected =
                  if n mod 2 = 1 then s.(n / 2)
                  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
                in
                Stats.median xs = expected
                && Stats.percentile xs 50.0 = expected );
            ( "monotone_in_p",
              fun () ->
                mono
                  (List.map (Stats.percentile xs)
                     [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ]) );
            ("variance_nonneg", fun () -> Stats.variance xs >= 0.0);
            ("singleton_variance", fun () -> n <> 1 || Stats.variance xs = 0.0);
          ]
      end)

let combi_power_vs_bigint =
  let base =
    Gen.oneof
      [|
        Gen.int_range (-50) 50;
        Gen.map
          (fun i -> [| 2; -2; 3; -3; -4; (1 lsl 31) - 1; -((1 lsl 31) - 1) |].(i))
          (Gen.int_range 0 6);
      |]
  in
  Property.make ~name:"combi.power_vs_bigint"
    ~gen:(Gen.pair base (Gen.int_range 0 70))
    ~shrink:(Shrink.pair Shrink.int Shrink.int) ~show:show_int_pair
    (fun (b, e) ->
      if e < 0 then None
      else begin
        let truth = B.pow (B.of_int b) e in
        match Combi.power b e with
        | v ->
            if B.fits_int truth && B.to_int truth = v then None
            else if B.fits_int truth then
              Some (Printf.sprintf "wrong value: %d" v)
            else Some (Printf.sprintf "missed overflow: returned %d" v)
        | exception Failure _ ->
            if B.fits_int truth then Some "spurious overflow" else None
      end)

let all () =
  [
    bigint_vs_native;
    bigint_divmod;
    bigint_string_roundtrip;
    bigint_karatsuba;
    modarith_vs_bigint;
    modarith_inv_contract;
    bitvec_vs_model;
    bitvec_popcount_int;
    bitmat_kernels;
    bitmat_rank_batch;
    txtable_vs_model;
    txtable_eviction_fail_soft;
    exact_cc_vs_reference;
    exact_cc_sandwiched;
    exact_cc_lb_portfolio_sound;
    zmatrix_det_agreement;
    zmatrix_singular_batch;
    lemma32_vs_determinant;
    json_roundtrip;
    stats_percentiles;
    combi_power_vs_bigint;
  ]
