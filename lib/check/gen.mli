(** Seeded value generators for the differential fuzzer.

    A generator is a function of a {!Commx_util.Prng.t}; every draw is
    deterministic in the generator state, so a whole fuzzing run replays
    exactly from one integer seed.  The combinators force their
    sub-generators in a specified order (left to right), never through
    [Array.init]-style unspecified evaluation, so the value stream is a
    pure function of the seed on any runtime. *)

type 'a t = Commx_util.Prng.t -> 'a

val run : 'a t -> Commx_util.Prng.t -> 'a

(** {2 Combinators} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val oneof : 'a t array -> 'a t
(** Uniform choice among alternatives (non-empty). *)

val array : int t -> 'a t -> 'a array t
(** [array len elt]: length drawn first, then elements left to right. *)

val list : int t -> 'a t -> 'a list t

(** {2 Scalars} *)

val bool : bool t

val int_range : int -> int -> int t
(** Uniform in the inclusive range. *)

val any_int : int t
(** Full-range signed int with a size-varying magnitude distribution,
    spiked with boundary values ([0], [±1], [min_int], [max_int],
    [±2^31], ...) — the inputs overflow bugs live at. *)

val nonneg_int : int t
(** {!any_int} masked onto [\[0, max_int\]]. *)

val byte_string : int t -> string t
(** Bytes uniform in [\[0, 127\]] — control characters included, which
    is the point (JSON escaping). *)

(** {2 Domain values} *)

val bigint : bits:int t -> Commx_bigint.Bigint.t t
(** Uniform magnitude below [2^bits], uniform sign. *)

val bitvec : len:int t -> Commx_util.Bitvec.t t
val bitmat : rows:int t -> cols:int t -> Commx_util.Bitmat.t t

val zmatrix :
  rows:int t -> cols:int t -> bits:int t -> Commx_linalg.Zmatrix.t t
(** Integer matrix with independent signed entries of at most [bits]
    magnitude bits (one [bits] draw per matrix). *)

val small_params : Commx_core.Params.t t
(** Restricted-format parameters small enough to fuzz against direct
    determinant evaluation: [n = 5], [k] in [\[2, 4\]]. *)

val hard_free : Commx_core.Params.t -> Commx_core.Hard_instance.free t
(** Uniform free blocks [C], [D], [E], [y] of the Fig. 1/3 hard
    instance. *)
