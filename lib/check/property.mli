(** A named differential property: generator, checker, shrinker.

    The checker returns [None] on agreement and [Some message] on a
    divergence; raising is also treated as a failure (with the
    exception text as the message), so a checker can call the optimized
    path directly and let unexpected exceptions surface as
    counterexamples. *)

type t =
  | Prop : {
      name : string;
      gen : 'a Gen.t;
      shrink : 'a Shrink.t;
      show : 'a -> string;
      check : 'a -> string option;
    }
      -> t

val make :
  name:string ->
  gen:'a Gen.t ->
  ?shrink:'a Shrink.t ->
  ?show:('a -> string) ->
  ('a -> string option) ->
  t
(** [?shrink] defaults to {!Shrink.nothing}, [?show] to a placeholder. *)

val name : t -> string
