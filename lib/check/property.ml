type t =
  | Prop : {
      name : string;
      gen : 'a Gen.t;
      shrink : 'a Shrink.t;
      show : 'a -> string;
      check : 'a -> string option;
    }
      -> t

let make ~name ~gen ?(shrink = Shrink.nothing) ?(show = fun _ -> "<opaque>")
    check =
  Prop { name; gen; shrink; show; check }

let name (Prop p) = p.name
