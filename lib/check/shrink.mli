(** Shrink-candidate enumeration for failing fuzz cases.

    A shrinker maps a failing value to a lazy sequence of strictly
    "smaller" candidates, most aggressive first.  The runner keeps the
    first candidate that still fails and repeats ({!Runner}), so
    termination only needs every candidate to be smaller in some
    well-founded measure — these all shrink toward [0] / shorter
    arrays. *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t
(** No candidates (opaque values). *)

val int : int t
(** Toward zero: [0], halving, then one step toward zero. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Shrinks the left component first, then the right. *)

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val array : ?elt:'a t -> unit -> 'a array t
(** Halves (first half, second half), then single-element removals
    (small arrays only), then per-element shrinks via [?elt]. *)

val list : ?elt:'a t -> unit -> 'a list t

val bigint : Commx_bigint.Bigint.t t
(** Toward {!Commx_bigint.Bigint.zero}: zero, then a right shift
    (truncated halving). *)

val bitmat : Commx_util.Bitmat.t t
(** Halves the dimensions, then clears one set bit at a time — a
    minimal counterexample matrix is usually sparse and tiny. *)
