(** Deterministic property runner with greedy shrinking.

    Each case [i] of property [p] under master seed [S] draws from a
    fresh generator seeded by a mix of [S], [p]'s name, and [i] — so a
    run is a pure function of [(S, count)], properties are independent
    of each other and of list order, and a failure replays from the
    printed master seed alone.

    On a failing case the runner shrinks greedily: it scans the
    property's candidate sequence for the first candidate that still
    fails, restarts from it, and repeats until no candidate fails (or
    {!max_shrink_steps} is hit), reporting both the original and the
    shrunk counterexample.

    Per-property telemetry: [check.<name>.cases] counts executed cases,
    [check.failures] counts failing properties. *)

val case_seed : seed:int -> name:string -> index:int -> int
(** The derived per-case seed (exposed for replay tooling/tests). *)

val max_shrink_steps : int

type failure = {
  case_index : int;  (** index of the first failing case *)
  case_seed : int;  (** its derived generator seed *)
  message : string;  (** divergence message for the shrunk case *)
  counterexample : string;  (** shrunk witness, printed *)
  original : string;  (** pre-shrink witness, printed *)
  shrink_steps : int;
}

type outcome = Pass | Failed of failure

type report = {
  name : string;
  cases : int;  (** cases actually executed (budget may stop early) *)
  outcome : outcome;
  wall_s : float;
}

val run_one : ?budget_s:float -> seed:int -> count:int -> Property.t -> report
(** Runs up to [count] cases; [?budget_s] stops starting new cases once
    the property has consumed that much wall time (the deep/nightly
    tier raises [count] and bounds time instead). *)

val run :
  ?budget_s:float ->
  ?filter:string ->
  seed:int ->
  count:int ->
  Property.t list ->
  report list
(** [?filter] keeps properties whose name contains the substring.
    [?budget_s] applies per property. *)

val all_passed : report list -> bool
