module Bitvec = Commx_util.Bitvec
module Bitmat = Commx_util.Bitmat
module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix

let popcount_int_naive x =
  if x < 0 then invalid_arg "Oracles.popcount_int_naive: negative";
  let c = ref 0 in
  for i = 0 to 62 do
    if (x lsr i) land 1 = 1 then incr c
  done;
  !c

let bitvec_bools v = Array.init (Bitvec.length v) (Bitvec.get v)

let mono_masked_naive m ~rmask ~cmask =
  let seen0 = ref false and seen1 = ref false in
  for i = 0 to Bitmat.rows m - 1 do
    if (rmask lsr i) land 1 = 1 then
      for j = 0 to Bitmat.cols m - 1 do
        if (cmask lsr j) land 1 = 1 then
          if Bitmat.get m i j then seen1 := true else seen0 := true
      done
  done;
  if !seen0 && !seen1 then -1 else if !seen1 then 1 else 0

let count_ones_naive m =
  let c = ref 0 in
  for i = 0 to Bitmat.rows m - 1 do
    for j = 0 to Bitmat.cols m - 1 do
      if Bitmat.get m i j then incr c
    done
  done;
  !c

let rec det_cofactor m =
  let n = Zm.rows m in
  if n <> Zm.cols m then invalid_arg "Oracles.det_cofactor: not square";
  if n = 0 then B.one
  else if n = 1 then Zm.get m 0 0
  else begin
    let acc = ref B.zero in
    for j = 0 to n - 1 do
      let c = Zm.get m 0 j in
      if not (B.is_zero c) then begin
        let minor =
          Zm.init (n - 1) (n - 1) (fun i' j' ->
              Zm.get m (i' + 1) (if j' < j then j' else j' + 1))
        in
        let term = B.mul c (det_cofactor minor) in
        acc := (if j land 1 = 0 then B.add !acc term else B.sub !acc term)
      end
    done;
    !acc
  end

module Table_model = struct
  type t = (int, int) Hashtbl.t

  let create () = Hashtbl.create 16
  let set t k v = Hashtbl.replace t k v
  let find t k = Option.value (Hashtbl.find_opt t k) ~default:(-1)
  let length t = Hashtbl.length t
  let fold f t init = Hashtbl.fold f t init
end
