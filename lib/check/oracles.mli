(** Independent reference implementations the fuzzer diffs against.

    Each oracle recomputes a quantity the optimized stack produces, by
    the most naive means available — per-bit loops where the kernels
    use SWAR words, cofactor expansion where {!Commx_linalg.Zmatrix}
    uses Bareiss/CRT, a hash-table model where {!Commx_util.Txtable}
    uses open addressing.  Slow on purpose: sharing code (or cleverness)
    with the implementation under test would share its bugs. *)

val popcount_int_naive : int -> int
(** Bit-at-a-time popcount of a non-negative native int. *)

val bitvec_bools : Commx_util.Bitvec.t -> bool array
(** The vector as a plain bool array (via per-index [get]). *)

val mono_masked_naive :
  Commx_util.Bitmat.t -> rmask:int -> cmask:int -> int
(** Per-entry reimplementation of {!Commx_util.Bitmat.mono_masked}
    ([0] all zeros, [1] all ones, [-1] mixed, empty = [0]). *)

val count_ones_naive : Commx_util.Bitmat.t -> int

val det_cofactor : Commx_linalg.Zmatrix.t -> Commx_bigint.Bigint.t
(** Determinant by first-row cofactor expansion — O(n!), fine for the
    tiny matrices the fuzzer draws.
    @raise Invalid_argument on non-square input. *)

(** Association model of {!Commx_util.Txtable}: last write wins, no
    capacity, no eviction.  An unbudgeted table must agree exactly; a
    budgeted table must be {e fail-soft} against it (absent or equal,
    never a wrong value). *)
module Table_model : sig
  type t

  val create : unit -> t
  val set : t -> int -> int -> unit

  val find : t -> int -> int
  (** [-1] when absent, like the real table. *)

  val length : t -> int
  val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
end
