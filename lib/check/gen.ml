module Prng = Commx_util.Prng
module Bitvec = Commx_util.Bitvec
module Bitmat = Commx_util.Bitmat
module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Params = Commx_core.Params
module H = Commx_core.Hard_instance

type 'a t = Prng.t -> 'a

let run gen g = gen g
let return x _ = x
let map f gen g = f (gen g)

let bind gen f g =
  let x = gen g in
  f x g

let pair ga gb g =
  let a = ga g in
  let b = gb g in
  (a, b)

let triple ga gb gc g =
  let a = ga g in
  let b = gb g in
  let c = gc g in
  (a, b, c)

let oneof gens g = (Prng.choose g gens) g

let array len elt g =
  let n = len g in
  if n = 0 then [||]
  else begin
    let first = elt g in
    let a = Array.make n first in
    for i = 1 to n - 1 do
      a.(i) <- elt g
    done;
    a
  end

let list len elt g = Array.to_list (array len elt g)
let bool g = Prng.bool g
let int_range lo hi g = Prng.int_incl g lo hi

let boundary_ints =
  [|
    0; 1; -1; 2; -2; max_int; min_int; max_int - 1; min_int + 1;
    (1 lsl 31) - 1; 1 lsl 31; -(1 lsl 31); (1 lsl 31) + 1; 1 lsl 62;
  |]

let any_int g =
  if Prng.int g 8 = 0 then Prng.choose g boundary_ints
  else begin
    (* A uniform draw would almost always be 62 bits wide; picking the
       width first puts real probability mass on the small values and
       the word-size boundaries. *)
    let bits = Prng.int_incl g 0 62 in
    let mag =
      if bits = 0 then 0
      else Int64.to_int (Int64.shift_right_logical (Prng.bits64 g) (64 - bits))
    in
    if Prng.bool g then -mag else mag
  end

let nonneg_int g = any_int g land max_int

let byte_string len g =
  let n = len g in
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Prng.int g 128))
  done;
  Bytes.to_string b

let bigint ~bits g =
  let b = bits g in
  let mag = B.random_bits g b in
  if Prng.bool g then B.neg mag else mag

let bitvec ~len g =
  let n = len g in
  Bitvec.random g n

let bitmat ~rows ~cols g =
  let r = rows g in
  let c = cols g in
  Bitmat.random g r c

let zmatrix ~rows ~cols ~bits g =
  let r = rows g in
  let c = cols g in
  let b = bits g in
  (* Fill through explicit loops (not the init callback) so the draw
     order is specified. *)
  let entries =
    Array.init r (fun _ -> Array.make (Stdlib.max c 1) B.zero)
  in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      let mag = B.random_bits g b in
      entries.(i).(j) <- (if Prng.bool g then B.neg mag else mag)
    done
  done;
  Zm.init r c (fun i j -> entries.(i).(j))

let small_params g =
  let k = Prng.int_incl g 2 4 in
  Params.make ~n:5 ~k

let hard_free p g = H.random_free g p
