(* Yao's structure theorem, computationally: build explicit protocol
   trees, extract the rectangle partition each induces on a truth
   matrix, and watch the theorem's guarantees hold (and fail, for a
   protocol that communicates too little).

     dune exec examples/yao_rectangles.exe        *)

module Ptree = Commx_comm.Ptree
module Tm = Commx_comm.Truth_matrix
module Bv = Commx_util.Bitvec

(* Singularity of a 2x2 matrix of 1-bit entries: Alice holds the first
   column (a, c), Bob the second (b, d). *)
let inputs = [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let singular (a, c) (b, d) = (a * d) - (b * c) = 0

let tm = Tm.build inputs inputs singular

(* A correct 3-bit protocol: Alice reveals her column, Bob answers. *)
let full_tree : (int * int, int * int) Ptree.t =
  let bit_a (a, _) = a = 1 in
  let bit_c (_, c) = c = 1 in
  let bob alice_col =
    Ptree.Bob
      ( (fun bobcol -> singular alice_col bobcol),
        Ptree.Answer false,
        Ptree.Answer true )
  in
  Ptree.Alice
    ( bit_a,
      Ptree.Alice (bit_c, bob (0, 0), bob (0, 1)),
      Ptree.Alice (bit_c, bob (1, 0), bob (1, 1)) )

(* An under-communicating protocol: Alice sends one bit only. *)
let cheap_tree : (int * int, int * int) Ptree.t =
  Ptree.Alice
    ( (fun (a, c) -> a lxor c = 1),
      Ptree.Answer true,
      Ptree.Answer false )

let show name tree =
  let ind = Ptree.induced_partition tree tm in
  Printf.printf
    "%-12s cost %d bits, %d leaves -> %d rectangles (<= 2^cost = %d): \
     disjoint cover %b, monochromatic %b\n"
    name (Ptree.cost tree) (Ptree.leaves tree) ind.Ptree.count
    (1 lsl Ptree.cost tree)
    ind.Ptree.disjoint_cover ind.Ptree.monochromatic;
  List.iteri
    (fun i (rows, cols) ->
      let mono =
        match (rows, cols) with
        | r0 :: _, c0 :: _ ->
            let v0 = Tm.get tm r0 c0 in
            let uniform =
              List.for_all
                (fun r -> List.for_all (fun c -> Tm.get tm r c = v0) cols)
                rows
            in
            if not uniform then "MIXED"
            else if v0 then "1-chromatic"
            else "0-chromatic"
        | _ -> "empty"
      in
      let cell_val (r, c) = Printf.sprintf "(%d,%d)" r c in
      Printf.printf "  rect %d: rows {%s} x cols {%s}  [%s]\n" i
        (String.concat " " (List.map (fun r -> cell_val (List.nth inputs r)) rows))
        (String.concat " " (List.map (fun c -> cell_val (List.nth inputs c)) cols))
        mono)
    ind.Ptree.rectangles

let () =
  print_endline
    "Truth matrix: singularity of [[a,b],[c,d]], 1-bit entries, Alice = \
     (a,c), Bob = (b,d)\n";
  for i = 0 to Tm.rows tm - 1 do
    print_string "  ";
    for j = 0 to Tm.cols tm - 1 do
      print_char (if Tm.get tm i j then '1' else '0')
    done;
    print_newline ()
  done;
  print_newline ();
  show "full (3b)" full_tree;
  Printf.printf "\n";
  show "cheap (1b)" cheap_tree;
  print_endline
    "\nThe correct protocol's rectangles are all monochromatic (Yao); \
     the 1-bit protocol still induces a disjoint rectangle cover, but \
     mixed rectangles betray its incorrectness — and the paper's whole \
     game is showing singularity needs MANY rectangles, hence many bits.";
  (* transcript demo *)
  let t = Ptree.transcript full_tree (1, 0) (1, 1) in
  Printf.printf "\ntranscript of ((1,0),(1,1)): %s (answer %b)\n"
    (Bv.to_string t)
    (Ptree.eval full_tree (1, 0) (1, 1))
