(* Resilient client for the `ccmx serve` daemon.

   Start a daemon in another terminal:

     dune exec bin/ccmx.exe -- serve \
       --socket /tmp/ccmx.sock --snapshot /tmp/ccmx.snap

   then run this client against it:

     dune exec examples/serve_client.exe -- /tmp/ccmx.sock

   The client is built on Commx_serve.Client, which wraps the raw
   JSON-lines protocol with connect/request timeouts, bounded retry
   with deterministic jittered backoff (transient server errors like
   `overloaded` are retried; timeouts are not) and a half-open circuit
   breaker.  It sends the same exact-CC query twice and prints both
   replies: the first is a cold search (nodes > 0, "cache": "miss"),
   the second is answered from the daemon's warm cache (nodes = 0,
   "cache": "hit").  It finishes with a `stats` query showing latency
   percentiles, cache counters and the self-healing counters
   (serve.worker_respawns, serve.snapshots_written, ...).  See
   EXPERIMENTS.md section "The serve daemon" for the full schema. *)

module Json = Commx_util.Json
module Client = Commx_serve.Client

let () =
  let socket_path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: serve_client.exe SOCKET_PATH";
        exit 1
  in
  let client =
    Client.create ~socket_path ~connect_timeout_s:5.0 ~retries:2
      ~log:(fun msg -> prerr_endline ("client: " ^ msg))
      ()
  in
  (* An 8x8 boolean board with low GF(2) rank, so the certified root
     bounds do not close the search and the daemon really works. *)
  let board =
    Json.List
      (List.map (fun s -> Json.String s)
         [ "01110100"; "10100010"; "00000000"; "00000000";
           "01101000"; "10111110"; "11010110"; "11001010" ])
  in
  let show label = function
    | Ok reply -> Printf.printf "%s %s\n" label (Json.to_string reply)
    | Error e ->
        Printf.eprintf "%s %s\n" label (Client.error_to_string e);
        exit 1
  in
  show "cold:" (Client.request client ~op:"exact_cc" [ ("matrix", board) ]);
  show "warm:" (Client.request client ~op:"exact_cc" [ ("matrix", board) ]);
  show "stats:" (Client.request client ~op:"stats" []);
  Client.close client
