(* Minimal client for the `ccmx serve` daemon.

   Start a daemon in another terminal:

     dune exec bin/ccmx.exe -- serve \
       --socket /tmp/ccmx.sock --snapshot /tmp/ccmx.snap

   then run this client against it:

     dune exec examples/serve_client.exe -- /tmp/ccmx.sock

   The client sends the same exact-CC query twice and prints both
   replies: the first is a cold search (nodes > 0, "cache": "miss"),
   the second is answered from the daemon's warm cache (nodes = 0,
   "cache": "hit").  It finishes with a `stats` query showing the
   latency percentiles and cache counters.  The protocol is one JSON
   object per line in each direction — see EXPERIMENTS.md section
   "The serve daemon" for the full schema. *)

module Json = Commx_util.Json

let rpc oc ic obj =
  output_string oc (Json.to_string obj);
  output_char oc '\n';
  flush oc;
  Json.of_string (input_line ic)

let () =
  let socket_path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: serve_client.exe SOCKET_PATH";
        exit 1
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  (* An 8x8 boolean board with low GF(2) rank, so the certified root
     bounds do not close the search and the daemon really works. *)
  let board =
    Json.List
      (List.map (fun s -> Json.String s)
         [ "01110100"; "10100010"; "00000000"; "00000000";
           "01101000"; "10111110"; "11010110"; "11001010" ])
  in
  let query id =
    Json.Obj
      [ ("op", Json.String "exact_cc"); ("id", Json.Int id);
        ("matrix", board) ]
  in
  let show label reply = Printf.printf "%s %s\n" label (Json.to_string reply) in
  show "cold:" (rpc oc ic (query 1));
  show "warm:" (rpc oc ic (query 2));
  show "stats:" (rpc oc ic (Json.Obj [ ("op", Json.String "stats") ]));
  Unix.close fd
