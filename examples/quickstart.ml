(* Quickstart: build a Chu-Schnitger hard instance, decide its
   singularity three independent ways, and run both protocols while
   counting the exchanged bits.

     dune exec examples/quickstart.exe            *)

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35
module Protocol = Commx_comm.Protocol
module Halves = Commx_protocols.Halves
module Trivial = Commx_protocols.Trivial
module Fingerprint = Commx_protocols.Fingerprint

let () =
  (* 1. Parameters: a 2n x 2n matrix of k-bit integers. *)
  let p = Params.make ~n:7 ~k:3 in
  Format.printf "parameters: %a@." Params.pp p;

  (* 2. A random hard instance (free blocks C, D, E, y uniform). *)
  let g = Prng.create 2024 in
  let f = H.random_free g p in
  let m = H.build_m p f in
  Printf.printf "built M: %dx%d, entries in [0, 2^%d)\n" (Zm.rows m)
    (Zm.cols m) p.Params.k;

  (* 3. Decide singularity three ways: exact rank, Lemma 3.2's
        criterion, and the determinant. *)
  let by_rank = Zm.rank m < Zm.rows m in
  let by_lemma = L32.criterion p f in
  let by_det = B.is_zero (Zm.det m) in
  Printf.printf "singular?  rank: %b   lemma 3.2: %b   det: %b\n" by_rank
    by_lemma by_det;
  assert (by_rank = by_lemma && by_lemma = by_det);

  (* 4. Force singularity: Lemma 3.5(a) computes D and y completing
        this C and E into a singular matrix. *)
  let w = L35.complete p ~c:f.H.c ~e:f.H.e in
  let m_singular = H.build_m p w.L35.free in
  Printf.printf "completed instance singular: %b (det = %s)\n"
    (Zm.is_singular m_singular)
    (B.to_string (Zm.det m_singular));

  (* 5. Protocols under the column partition pi_0. *)
  let alice, bob = Halves.split_pi0 m in
  let answer, bits = Protocol.execute (Trivial.singularity ~k:3) alice bob in
  Printf.printf "trivial protocol: answer=%b, %d bits (= 2 k n^2 = %d)\n"
    answer bits
    (2 * 7 * 7 * 3);

  let rp = Fingerprint.singularity ~n:7 ~k:3 ~epsilon:0.01 in
  let answer_r, bits_r =
    Protocol.execute (rp.Commx_comm.Randomized.run_seeded ~seed:42) alice bob
  in
  Printf.printf "fingerprint protocol: answer=%b, %d bits\n" answer_r bits_r;
  Printf.printf
    "Theorem 1.1: no deterministic protocol beats Theta(k n^2); the \
     randomized one may (and does, for large k).\n"
