(* VLSI area-time tradeoffs: evaluate a family of chip designs for
   singularity testing against the AT^2 = Omega(I^2) bound that the
   paper's communication result induces, and compare the derived
   time/AT bounds with Chazelle-Monier's.

     dune exec examples/vlsi_tradeoff.exe         *)

module Layout = Commx_vlsi.Layout
module Tradeoff = Commx_vlsi.Tradeoff
module Bounds = Commx_core.Bounds
module Tab = Commx_util.Tab

let () =
  let n = 8 and k = 4 in
  let info = Bounds.info_bits ~n ~k in
  Printf.printf
    "Singularity testing of a %dx%d matrix of %d-bit entries\n\
     communication complexity I = k n^2 = %.0f bits  =>  A T^2 >= %.0f\n\n"
    (2 * n) (2 * n) k info
    (Bounds.at2_lower ~info_bits:info);

  let tab =
    Tab.make
      ~caption:"Chip family: same input, different aspect ratios"
      ~header:[ "design"; "grid"; "area"; "cut"; "T >="; "AT^2"; "slack" ]
      [ Tab.Left; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right ]
  in
  List.iter
    (fun d ->
      let cut = Layout.min_crossing_balanced_cut d.Tradeoff.layout in
      Tab.add_row tab
        [ d.Tradeoff.name;
          Printf.sprintf "%dx%d" (Layout.h d.Tradeoff.layout)
            (Layout.w d.Tradeoff.layout);
          string_of_int (Layout.area d.Tradeoff.layout);
          string_of_int cut.Layout.crossing;
          Printf.sprintf "%.1f" d.Tradeoff.time_estimate;
          Printf.sprintf "%.0f" (Tradeoff.at2 d);
          Tab.fmt_ratio (Tradeoff.at2 d /. Bounds.at2_lower ~info_bits:info) ])
    (Tradeoff.designs_for ~n ~k);
  Tab.print tab;

  print_newline ();
  let tab2 =
    Tab.make
      ~caption:
        "Derived bounds vs Chazelle-Monier (boundary-port model) as k \
         grows: the paper's improvement factor is sqrt(k) for T and \
         k^1.5 n for AT"
      ~header:[ "k"; "our T >="; "CM T >="; "our AT >="; "CM AT >=" ]
      [ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
  in
  List.iter
    (fun k ->
      let r = Tradeoff.bound_row ~n:16 ~k in
      Tab.add_row tab2
        [ string_of_int k;
          Printf.sprintf "%.1f" r.Tradeoff.our_t;
          Printf.sprintf "%.0f" r.Tradeoff.cm_t;
          Printf.sprintf "%.0f" r.Tradeoff.our_at;
          Printf.sprintf "%.0f" r.Tradeoff.cm_at ])
    [ 1; 4; 16; 64; 256 ];
  Tab.print tab2;

  (* Exact min-cut sanity on a small grid via the max-flow engine. *)
  let l = Layout.make ~h:4 ~w:4 in
  Layout.place_port l ~row:0 ~col:0 ~bit:0;
  Layout.place_port l ~row:3 ~col:3 ~bit:1;
  Printf.printf
    "\nmax-flow check: separating opposite corners of a 4x4 grid cuts \
     %d wires (expected 2).\n"
    (Layout.bisection_width_exact l ~parts:(0, 1))
