(* Corollary 1.2(d) without floating point: the singular-value
   *structure* of an integer matrix — how many vanish, how many are
   distinct, where they sit — extracted exactly through the
   characteristic polynomial of M^T M and Sturm sequences.

     dune exec examples/exact_svd_structure.exe   *)

module B = Commx_bigint.Bigint
module Q = Commx_bigint.Rational
module Zm = Commx_linalg.Zmatrix
module Charpoly = Commx_linalg.Charpoly
module Poly = Commx_linalg.Poly
module Svd = Commx_linalg.Svd
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L35 = Commx_core.Lemma35

let analyze name m =
  let n = Zm.rows m in
  let zeros = Charpoly.zero_singular_values m in
  let distinct = Poly.distinct_singular_value_count m in
  Printf.printf "%-24s %dx%d  rank %d  zero sigmas %d  distinct nonzero %d\n"
    name n (Zm.cols m) (Zm.rank m) zeros distinct;
  (* localize: count sigma^2 in dyadic windows, exactly *)
  let windows =
    [ (0, 1); (1, 4); (4, 16); (16, 64); (64, 4096); (4096, 1 lsl 20) ]
  in
  let parts =
    List.filter_map
      (fun (lo, hi) ->
        let c =
          Poly.singular_values_in m ~lo:(Q.of_int lo) ~hi:(Q.of_int hi)
        in
        if c > 0 then Some (Printf.sprintf "(%d,%d]:%d" lo hi c) else None)
      windows
  in
  Printf.printf "%-24s sigma^2 localization: %s\n" ""
    (String.concat "  " parts);
  (* cross-check against the float SVD *)
  if Zm.rows m <= 12 then begin
    let s = Svd.singular_values (Svd.of_zmatrix m) in
    Printf.printf "%-24s float sigmas: %s\n" ""
      (String.concat " "
         (Array.to_list (Array.map (Printf.sprintf "%.3f") s)))
  end

let () =
  print_endline
    "Exact singular-value structure (no floating point in any decision)\n";
  (* a diagonal example with known sigmas *)
  analyze "diag(1, 2, 2, 0)"
    (Zm.of_int_array2
       [| [| 1; 0; 0; 0 |]; [| 0; 2; 0; 0 |]; [| 0; 0; 2; 0 |];
          [| 0; 0; 0; 0 |] |]);
  print_newline ();
  (* a random small matrix *)
  let g = Prng.create 7 in
  analyze "random 5x5 (3-bit)" (Zm.random_kbit g ~rows:5 ~cols:5 ~k:3);
  print_newline ();
  (* a hard instance forced singular: at least one zero sigma *)
  let p = Params.make ~n:5 ~k:2 in
  let f = H.random_free g p in
  let m = H.build_m p (L35.complete p ~c:f.H.c ~e:f.H.e).L35.free in
  analyze "hard singular (10x10)" m;
  print_newline ();
  print_endline
    "The paper's Corollary 1.2(d) says even this structure costs \
     Theta(k n^2) bits to communicate: the zero-sigma count alone \
     decides singularity."
