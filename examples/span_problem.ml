(* The vector-space span problem (Lovász-Saks) on k-bit integer
   vectors, and its equivalence with singularity: the union of the two
   column-half spans covers Q^2n exactly when M is nonsingular.

     dune exec examples/span_problem.exe          *)

module Zm = Commx_linalg.Zmatrix
module Sub = Commx_linalg.Subspace
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L35 = Commx_core.Lemma35
module Protocol = Commx_comm.Protocol
module Span = Commx_protocols.Span

let describe name m =
  let v1, v2 = Span.instance_of_matrix m in
  let got, bits_triv = Protocol.execute (Span.trivial ~k:2) v1 v2 in
  let got2, bits_smart = Protocol.execute (Span.dimension_exchange ~k:2) v1 v2 in
  assert (got = got2);
  Printf.printf
    "%-22s dim V1 = %d, dim V2 = %d, dim(V1+V2) = %d / %d  =>  union \
     spans: %-5b  (trivial %d bits, basis-exchange %d bits)\n"
    name
    (Sub.dim (Span.span_of v1))
    (Sub.dim (Span.span_of v2))
    (Sub.dim (Sub.add (Span.span_of v1) (Span.span_of v2)))
    (Zm.rows m) got bits_triv bits_smart

let () =
  print_endline
    "Vector-space span problem: Alice holds vectors spanning V1, Bob \
     V2;\ndecide whether V1 ∪ V2 spans the whole space.\n";
  let p = Params.make ~n:5 ~k:2 in
  let g = Prng.create 99 in

  (* nonsingular-ish random instance: union usually spans *)
  describe "random M" (H.build_m p (H.random_free g p));

  (* guaranteed singular: union cannot span *)
  let raw = H.random_free g p in
  let singular_free = (L35.complete p ~c:raw.H.c ~e:raw.H.e).L35.free in
  describe "completed (singular) M" (H.build_m p singular_free);

  (* redundant input: Alice holds 12 copies spanning a line — the
     basis-exchange protocol wins big *)
  let dim = 10 in
  let line = Zm.init dim 12 (fun i _ -> Commx_bigint.Bigint.of_int (i mod 3)) in
  let bob = Zm.random_kbit g ~rows:dim ~cols:5 ~k:2 in
  let got, bits_triv = Protocol.execute (Span.trivial ~k:2) line bob in
  let _, bits_smart = Protocol.execute (Span.dimension_exchange ~k:2) line bob in
  Printf.printf
    "redundant Alice input    union spans: %-5b  (trivial %d bits, \
     basis-exchange %d bits — %.1fx cheaper)\n"
    got bits_triv bits_smart
    (float_of_int bits_triv /. float_of_int bits_smart);

  print_endline
    "\nLovász-Saks: fixed-partition complexity is log^2(#subspaces); \
     Theorem 1.1\npins the unrestricted complexity at Theta(k n^2) for \
     k-bit integer vectors."
