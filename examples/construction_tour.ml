(* A guided tour of the Figure 1 / Figure 3 construction: print a small
   hard instance with every block annotated, then walk through the
   Lemma 3.2 / 3.5(a) mechanics on it.

     dune exec examples/construction_tour.exe     *)

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module Gadget = Commx_core.Gadget
module H = Commx_core.Hard_instance
module L32 = Commx_core.Lemma32
module L35 = Commx_core.Lemma35

let role_of p positions row col =
  let n = p.Params.n in
  match List.find_opt (fun (_, r, c) -> r = row && c = col) positions with
  | Some (H.C, _, _) -> 'C'
  | Some (H.D, _, _) -> 'D'
  | Some (H.E, _, _) -> 'E'
  | Some (H.Y, _, _) -> 'y'
  | None ->
      if col = 0 then (if row = 0 then '#' else '.')
      else if col = n then (if row = n - 1 then '#' else '.')
      else if row < n && col > n then
        if row + col = (2 * n) - 1 then '1'
        else if row + col = 2 * n then 'q'
        else '.'
      else if row >= n && col < n then
        (* inside A: diagonal / superdiagonal gadget *)
        let i = row - n and j = col - 1 in
        if i = j || (i < p.Params.half && j = i + 1 && j <= p.Params.half - 1)
           || (i = n - 1 && j = 0)
        then '#'
        else '.'
      else '.'

let () =
  let p = Params.make ~n:5 ~k:3 in
  Format.printf "parameters: %a@." Params.pp p;
  Printf.printf
    "q = 2^k - 1 = %s; blocks: C is %dx%d (Agent 1), D is %dx%d, E is \
     %dx%d, y has %d entries (Agent 2)\n\n"
    (B.to_string p.Params.q) p.Params.half p.Params.half p.Params.half
    p.Params.d_width p.Params.half p.Params.e_width
    (p.Params.n - 1);

  let g = Prng.create 12 in
  let f = H.random_free g p in
  let m = H.build_m p f in
  let positions = H.free_positions p in

  print_endline
    "Block map of M (10x10): # fixed nonzero, 1/q the anti-diagonal \
     gadget, C D E y free blocks, . zero";
  for row = 0 to (2 * p.Params.n) - 1 do
    print_string "  ";
    for col = 0 to (2 * p.Params.n) - 1 do
      print_char (role_of p positions row col);
      print_char ' '
    done;
    print_newline ()
  done;

  print_endline "\nThe instance itself:";
  for row = 0 to Zm.rows m - 1 do
    print_string "  ";
    for col = 0 to Zm.cols m - 1 do
      Printf.printf "%3s" (B.to_string (Zm.get m row col))
    done;
    print_newline ()
  done;

  (* Lemma 3.2 mechanics *)
  let u = Gadget.u_vector p in
  Printf.printf "\nu = [%s]  (the forced coefficients of Lemma 3.2)\n"
    (String.concat "; " (Array.to_list (Array.map B.to_string u)));
  let bu = H.b_dot_u p f in
  Printf.printf "B.u = [%s]\n"
    (String.concat "; " (Array.to_list (Array.map B.to_string bu)));
  Printf.printf "B.u in Span(A): %b   =>   M singular: %b (det = %s)\n"
    (L32.criterion p f)
    (Zm.is_singular m)
    (B.to_string (Zm.det m));

  (* Completion *)
  let w = L35.complete p ~c:f.H.c ~e:f.H.e in
  Printf.printf
    "\nLemma 3.5(a): completing the same C and E with computed D, y:\n\
     coefficient witness x = [%s]\n\
     A.x = B.u: %b;  completed M singular: %b\n"
    (String.concat "; " (Array.to_list (Array.map B.to_string w.L35.x)))
    (L35.check_witness p w)
    (Zm.is_singular (H.build_m p w.L35.free))
