(* Corollary 1.3 end to end: turn a singularity instance into a
   linear-system solvability instance, decide it exactly, and measure
   the protocol cost.

     dune exec examples/solvability_demo.exe      *)

module B = Commx_bigint.Bigint
module Zm = Commx_linalg.Zmatrix
module Prng = Commx_util.Prng
module Params = Commx_core.Params
module H = Commx_core.Hard_instance
module L35 = Commx_core.Lemma35
module Red = Commx_core.Reductions
module Protocol = Commx_comm.Protocol
module Solvability = Commx_protocols.Solvability

let show_case p name f =
  let m = H.build_m p f in
  let m', b = Red.solvability_instance m in
  let singular = Zm.is_singular m in
  let solvable = Red.system_solvable m' b in
  Printf.printf "%-28s  M singular: %-5b  M'x = b solvable: %-5b  %s\n" name
    singular solvable
    (if singular = solvable then "(corollary holds)" else "(VIOLATION)");
  (* protocol cost on the system instance *)
  let alice, bob = Solvability.split m' b in
  let _, bits = Protocol.execute (Solvability.trivial ~k:p.Params.k) alice bob in
  Printf.printf "%-28s  trivial solvability protocol: %d bits\n" "" bits

let () =
  let p = Params.make ~n:7 ~k:2 in
  let g = Prng.create 7 in
  Printf.printf
    "Corollary 1.3: 'does A x = b have a solution' costs Theta(k n^2) \
     bits,\nbecause M is singular iff M' x = b is solvable (M' = M with \
     its first\ncolumn b zeroed; the other 2n-1 columns are independent \
     by construction).\n\n";

  (* a guaranteed-singular instance via the completion algorithm *)
  let raw = H.random_free g p in
  let singular_free = (L35.complete p ~c:raw.H.c ~e:raw.H.e).L35.free in
  show_case p "completed (singular)" singular_free;

  (* random instances, usually nonsingular *)
  for i = 1 to 3 do
    show_case p (Printf.sprintf "random #%d" i) (H.random_free g p)
  done;

  (* an explicit tiny system solved over Q for illustration *)
  let a =
    Zm.of_int_array2 [| [| 1; 1; 0 |]; [| 0; 1; 1 |]; [| 1; 2; 1 |] |]
  in
  let b = Array.map B.of_int [| 3; 5; 8 |] in
  Printf.printf
    "\ntiny system [1 1 0; 0 1 1; 1 2 1] x = [3; 5; 8]: solvable = %b \
     (A is singular, b lies in its column span)\n"
    (Red.system_solvable a b);
  let b2 = Array.map B.of_int [| 3; 5; 9 |] in
  Printf.printf
    "same A with b = [3; 5; 9]: solvable = %b (outside the span)\n"
    (Red.system_solvable a b2)
