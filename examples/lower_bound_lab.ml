(* Lower-bound laboratory: enumerate a small singularity truth matrix
   exactly and certify communication lower bounds with three
   independent techniques (rectangle cover, log-rank, fooling sets),
   then watch the certificates grow with the entry width k.

     dune exec examples/lower_bound_lab.exe       *)

module Tm = Commx_comm.Truth_matrix
module Rank_bound = Commx_comm.Rank_bound
module Rect = Commx_comm.Rectangle
module Fooling = Commx_comm.Fooling
module Tab = Commx_util.Tab

(* Truth matrix of "is [[a, b], [c, d]] singular" where Alice holds the
   first column (a, c) and Bob the second (b, d), entries k-bit. *)
let singularity_tm ~k =
  let range = 1 lsl k in
  let halves =
    List.concat_map
      (fun a -> List.init range (fun b -> (a, b)))
      (List.init range (fun a -> a))
  in
  Tm.build halves halves (fun (a, c) (b, d) -> (a * d) - (b * c) = 0)

let () =
  print_endline
    "Exact communication lower bounds for singularity of 2x2 k-bit \
     matrices\n(every protocol, not just the ones we implemented)";
  let tab =
    Tab.make
      ~header:
        [ "k"; "truth matrix"; "ones"; "largest 1-rect"; "cover bound";
          "log-rank"; "fooling"; "trivial upper" ]
      [ Tab.Right; Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
        Tab.Right; Tab.Right ]
  in
  List.iter
    (fun k ->
      let tm = singularity_tm ~k in
      let m = Tm.to_bitmat tm in
      let exact = k <= 2 in
      let report = Rank_bound.analyze tm ~exact_rect:exact in
      let rect =
        if exact then Rect.max_one_rectangle_exact m
        else Rect.max_one_rectangle_greedy (Commx_util.Prng.create 1) m
      in
      Tab.add_row tab
        [ string_of_int k;
          Printf.sprintf "%dx%d" (Tm.rows tm) (Tm.cols tm);
          string_of_int report.Rank_bound.ones;
          (if exact then string_of_int (Rect.area rect)
           else Printf.sprintf "~%d" (Rect.area rect));
          Printf.sprintf "%.2f bits%s" report.Rank_bound.cover_bits
            (if exact then "" else " (est)");
          Printf.sprintf "%.2f bits" report.Rank_bound.log_rank;
          Printf.sprintf "%.2f bits" report.Rank_bound.fooling_bits;
          Printf.sprintf "%d bits" (2 * k) ])
    [ 1; 2; 3 ];
  Tab.print tab;
  print_newline ();
  (* Show an actual maximal 1-chromatic rectangle for k = 1: the
     structure behind claim (2b). *)
  let tm1 = singularity_tm ~k:1 in
  let m1 = Tm.to_bitmat tm1 in
  let rect = Rect.max_one_rectangle_exact m1 in
  Printf.printf
    "k=1: a maximum 1-chromatic rectangle has %d rows x %d cols \
     (area %d of %d ones).\n"
    (Array.length rect.Rect.row_set)
    (Array.length rect.Rect.col_set)
    (Rect.area rect)
    (Commx_util.Bitmat.count_ones m1);
  (* And a fooling set certificate. *)
  let fs = Fooling.greedy tm1 in
  Printf.printf
    "k=1: greedy fooling set of size %d certifies >= %.2f bits.\n"
    (List.length fs)
    (Fooling.lower_bound_bits fs);
  print_endline
    "\nThe paper scales this machinery to 2n x 2n matrices: the \
     restricted truth matrix of Section 3 has q^((n-1)^2/4) rows and \
     its 1-rectangles are provably tiny, forcing Theta(k n^2) bits."
